package experiments

import (
	"fmt"

	"github.com/tinysystems/artemis-go/internal/core"
	"github.com/tinysystems/artemis-go/internal/simclock"
	"github.com/tinysystems/artemis-go/internal/trace"
)

// FreshnessRow compares how one runtime handles input staleness under one
// charging delay: the benchmark's accel data must reach send within 5
// minutes, so a delay beyond that makes every reboot-separated consumption
// stale.
type FreshnessRow struct {
	System string
	Delay  simclock.Duration
	// StaleEvents counts stale-input encounters: Mayfly dispatches blocked
	// by an expired MITD (each answered with a path restart), Ocelot
	// staleness detections (each answered with a re-collection), ARTEMIS
	// monitor adaptations (path restarts + skips).
	StaleEvents int
	// ReCollections is Ocelot's enforcement work (0 for the others).
	ReCollections int
	// Violations counts consumers that actually ran on stale data: always
	// 0 for Ocelot by construction; for Mayfly the livelocked run never
	// consumes stale data either — it simply never finishes.
	Violations int
	Outcome    Outcome
}

// freshnessBudgetUJ pins this experiment's per-boot energy inside the
// window that separates the two enforcement granularities. On the
// MSP430FR5994 profile, re-collecting accel and reaching send in one boot
// costs ~975 µJ (420 µJ accel + 520 µJ BLE + CPU/commit overhead), while
// Mayfly's whole-path restart additionally re-runs filter and classify
// (~995 µJ total). At 980 µJ Ocelot's targeted re-collection fits in a
// boot but Mayfly's full restart does not — below ~975 µJ the two sensing
// peripherals cannot share any boot and freshness across a 6-minute gap
// is physically unenforceable for everyone.
const freshnessBudgetUJ = 980

// InputFreshness runs the health benchmark on all three runtimes under a
// charging delay below and above the 5-minute accel->send bound. Below the
// bound everyone completes untouched. Above it the three philosophies
// split: ARTEMIS adapts through its monitors and completes, Mayfly
// restarts the path forever (the Figure-12 non-termination, its stale
// counter growing with every retry), and the Ocelot-style runtime
// re-collects the stale input and completes with zero violations.
func InputFreshness(o Options) ([]FreshnessRow, error) {
	o = o.withDefaults()
	o.BudgetUJ = freshnessBudgetUJ
	type run struct {
		sys   core.System
		delay simclock.Duration
	}
	var runs []run
	for _, d := range []simclock.Duration{4 * simclock.Minute, 6 * simclock.Minute} {
		for _, sys := range []core.System{core.Artemis, core.Mayfly, core.Ocelot} {
			runs = append(runs, run{sys, d})
		}
	}
	return sweep(o, runs, func(_ int, r run) (FreshnessRow, error) {
		rep, out, err := runHealth(r.sys, fixedDelay(o.BudgetUJ, r.delay), o, nil)
		if err != nil {
			return FreshnessRow{}, fmt.Errorf("input freshness (%v, %v): %w", r.sys, r.delay, err)
		}
		row := FreshnessRow{System: r.sys.String(), Delay: r.delay, Outcome: out}
		switch {
		case rep.MayflyStats != nil:
			row.StaleEvents = rep.MayflyStats.FreshnessFailures
		case rep.FreshnessStats != nil:
			row.StaleEvents = rep.FreshnessStats.StaleDetected
			row.ReCollections = rep.FreshnessStats.ReCollections
			row.Violations = rep.FreshnessStats.Violations
		case rep.ArtemisStats != nil:
			row.StaleEvents = rep.ArtemisStats.PathRestarts + rep.ArtemisStats.PathSkips
		}
		return row, nil
	})
}

// TableInputFreshness builds the freshness-comparison table.
func TableInputFreshness(rows []FreshnessRow) *trace.Table {
	t := trace.NewTable(
		"Input freshness — accel->send bound 5 min vs charging delay (980 µJ/boot)",
		"runtime", "delay", "stale events", "re-collections", "violations", "total time")
	for _, r := range rows {
		t.AddRow(
			r.System,
			fmt.Sprintf("%d min", int(r.Delay.Minutes())),
			fmt.Sprintf("%d", r.StaleEvents),
			fmt.Sprintf("%d", r.ReCollections),
			fmt.Sprintf("%d", r.Violations),
			formatOutcomeTime(r.Outcome),
		)
	}
	return t
}

// RenderInputFreshness prints the freshness comparison.
func RenderInputFreshness(rows []FreshnessRow) string { return TableInputFreshness(rows).Render() }
