package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"github.com/tinysystems/artemis-go/internal/artemis"
	"github.com/tinysystems/artemis-go/internal/codegen"
	"github.com/tinysystems/artemis-go/internal/core"
	"github.com/tinysystems/artemis-go/internal/health"
	"github.com/tinysystems/artemis-go/internal/trace"
)

// Table2Row reports one component's memory requirements, the Table-2
// columns translated to this reproduction's measurable quantities:
//
//   - Text is the code-size proxy: bytes of the component's Go source (for
//     the generated monitors, the bytes artemisgen emits for the benchmark).
//   - RAM is the volatile working set: the SRAM staging buffers of the
//     component's committed regions.
//   - FRAM is the measured persistent allocation from the NVM accountant.
type Table2Row struct {
	Component string
	Text      int
	RAM       int
	FRAM      int
}

// Table2 measures the memory requirements of the Mayfly runtime, the
// ARTEMIS runtime, and the generated ARTEMIS monitors for the benchmark
// application. The paper's structural claims: the decoupled ARTEMIS runtime
// needs less FRAM than Mayfly's (the property bookkeeping moved out), and
// the application-specific monitors carry the bulk of the persistent state.
func Table2(o Options) ([]Table2Row, error) {
	o = o.withDefaults()

	type t2run struct {
		name string
		sys  core.System
		hook func(*core.Config)
	}
	runs := []t2run{
		{"ARTEMIS", core.Artemis, nil},
		{"Mayfly", core.Mayfly, nil},
		{"Ocelot", core.Ocelot, nil},
		{"integrity", core.Artemis, func(cfg *core.Config) { cfg.Integrity = true }},
	}
	reps, err := sweep(o, runs, func(_ int, r t2run) (*core.Report, error) {
		rep, _, err := runHealth(r.sys, continuous(), o, r.hook)
		if err != nil {
			return nil, fmt.Errorf("table 2 (%s): %w", r.name, err)
		}
		return rep, nil
	})
	if err != nil {
		return nil, err
	}
	artRep, mayRep, oceRep, intRep := reps[0], reps[1], reps[2], reps[3]

	res, err := health.CompiledShared()
	if err != nil {
		return nil, err
	}
	monSrc, err := codegen.Generate(res.Program, "monitors")
	if err != nil {
		return nil, err
	}

	rows := []Table2Row{
		{
			Component: "Mayfly runtime",
			Text:      sourceBytes("mayfly/mayfly.go"),
			RAM:       stagingBytes(mayRep, "mayfly"),
			FRAM:      mayRep.Footprints["mayfly"],
		},
		{
			// The Ocelot-style freshness enforcer is the leanest of the
			// three: Mayfly's control layout plus one timestamp slot per
			// bounded producer, no per-task/per-edge metadata, no monitors.
			Component: "Ocelot freshness runtime",
			Text:      sourceBytes("freshness/freshness.go"),
			RAM:       stagingBytes(oceRep, "ocelot"),
			FRAM:      oceRep.Footprints["ocelot"],
		},
		{
			Component: "ARTEMIS runtime",
			Text:      sourceBytes("artemis/runtime.go"),
			RAM:       stagingBytes(artRep, "runtime"),
			FRAM:      artRep.Footprints["runtime"],
		},
		{
			Component: "ARTEMIS monitor (generated)",
			Text:      len(monSrc),
			RAM:       stagingBytes(artRep, "monitor"),
			FRAM:      artRep.Footprints["monitor"],
		},
		{
			// The optional self-healing layer (off by default): one
			// double-buffered 8-byte CRC per guarded region, plus two
			// watchdog words already counted in the runtime's control
			// region above.
			Component: "ARTEMIS integrity guards (optional)",
			Text:      sourceBytes("integrity/integrity.go"),
			RAM:       guardCount(intRep) * 8,
			FRAM:      intRep.Footprints["integrity"],
		},
	}
	return rows, nil
}

// guardCount reports how many regions the integrity layer guarded; each
// guard keeps one 8-byte CRC staging buffer in SRAM.
func guardCount(rep *core.Report) int {
	if rep.Integrity == nil {
		return 0
	}
	return rep.Integrity.Guards
}

// stagingBytes estimates a component's volatile working set: each committed
// region keeps one payload-sized staging buffer in SRAM, which the NVM
// accountant exposes as the ".a" buffer of the double-buffered pair.
func stagingBytes(rep *core.Report, owner string) int {
	// Footprints do not carry allocation names, so recompute from the
	// convention: a committed region of payload n allocates n (.a) + n (.b)
	// + 1 (.sel) bytes; plain Vars allocate 8 bytes with no staging. The
	// report exposes only totals, so the harness re-derives staging from
	// the structural constants of each component:
	switch owner {
	case "monitor":
		// One committed region per machine; payload = (11 + vars) words.
		// Derivable exactly: total = 2·stage + 1 per machine.
		return (rep.Footprints[owner] - machineCount(rep)) / 2
	case "runtime":
		// One committed control region + initDone; derive from the runtime's
		// layout constant so watchdog words stay counted.
		return artemis.ControlWords * 8
	case "mayfly":
		// One committed control region (4 words = 32 B staged); endTime and
		// collected slots are plain Vars with no staging.
		return 32
	case "ocelot":
		// The Mayfly-shaped control region (32 B staged) plus the stamps
		// region: one 8-byte timestamp slot for the benchmark's single
		// bounded producer (accel).
		return 32 + 8
	default:
		return 0
	}
}

func machineCount(rep *core.Report) int {
	if rep.System == core.Artemis {
		return 8 // the benchmark's eight properties
	}
	return 0
}

// sourceBytes reads the size of a component's Go source file as the .text
// proxy. The path is relative to the internal/ directory of this
// repository; the experiments run in-repo, so the file is reachable from
// this source file's location.
func sourceBytes(rel string) int {
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		return 0
	}
	p := filepath.Join(filepath.Dir(self), "..", rel)
	info, err := os.Stat(p)
	if err != nil {
		return 0
	}
	return int(info.Size())
}

// TableTable2 builds the memory-requirements table.
func TableTable2(rows []Table2Row) *trace.Table {
	t := trace.NewTable(
		"Table 2 — memory requirements (bytes; .text is a source-size proxy)",
		"component", ".text", "RAM", "FRAM")
	for _, r := range rows {
		t.AddRow(r.Component,
			fmt.Sprintf("%d", r.Text),
			fmt.Sprintf("%d", r.RAM),
			fmt.Sprintf("%d", r.FRAM))
	}
	return t
}

// RenderTable2 prints the memory-requirements table.
func RenderTable2(rows []Table2Row) string { return TableTable2(rows).Render() }
