package experiments

import (
	"fmt"

	"github.com/tinysystems/artemis-go/internal/core"
	"github.com/tinysystems/artemis-go/internal/simclock"
	"github.com/tinysystems/artemis-go/internal/trace"
)

// Fig12Row is one charging-time point of Figure 12: total execution time of
// the benchmark under intermittent power, ARTEMIS vs Mayfly.
type Fig12Row struct {
	Charging simclock.Duration
	Artemis  Outcome
	Mayfly   Outcome
}

// Figure12 sweeps the charging delay and measures the total execution time
// of both systems. The paper's claim: beyond the 5-minute MITD, Mayfly
// never completes (its execution time is unbounded), while ARTEMIS's
// maxAttempt bound lets it finish at every delay.
func Figure12(o Options) ([]Fig12Row, error) {
	o = o.withDefaults()
	return sweep(o, o.ChargingDelays, func(_ int, delay simclock.Duration) (Fig12Row, error) {
		supply := fixedDelay(o.BudgetUJ, delay)
		_, art, err := runHealth(core.Artemis, supply, o, nil)
		if err != nil {
			return Fig12Row{}, fmt.Errorf("figure 12 (ARTEMIS, %v): %w", delay, err)
		}
		_, may, err := runHealth(core.Mayfly, supply, o, nil)
		if err != nil {
			return Fig12Row{}, fmt.Errorf("figure 12 (Mayfly, %v): %w", delay, err)
		}
		return Fig12Row{Charging: delay, Artemis: art, Mayfly: may}, nil
	})
}

// TableFigure12 builds the Figure-12 series as a table (render as text or
// CSV).
func TableFigure12(rows []Fig12Row) *trace.Table {
	t := trace.NewTable(
		"Figure 12 — total execution time vs charging time (ARTEMIS prevents non-termination)",
		"charging", "ARTEMIS time", "ARTEMIS reboots", "Mayfly time", "Mayfly restarts")
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%.0f min", r.Charging.Minutes()),
			formatOutcomeTime(r.Artemis),
			fmt.Sprintf("%d", r.Artemis.Reboots),
			formatOutcomeTime(r.Mayfly),
			fmt.Sprintf("%d", r.Mayfly.PathRestarts),
		)
	}
	return t
}

// RenderFigure12 prints the Figure-12 series.
func RenderFigure12(rows []Fig12Row) string { return TableFigure12(rows).Render() }
