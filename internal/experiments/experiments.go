// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the simulated testbed: the wearable health-monitoring
// benchmark on an MSP430FR5994-class device under RF-harvesting-style
// intermittent power.
//
// Each FigureN/TableN function returns typed rows plus a Render helper that
// prints the same series the paper plots. cmd/experiments drives them from
// the command line; bench_test.go wraps each in a testing.B benchmark.
package experiments

import (
	"context"
	"fmt"

	"github.com/tinysystems/artemis-go/internal/core"
	"github.com/tinysystems/artemis-go/internal/freshness"
	"github.com/tinysystems/artemis-go/internal/health"
	"github.com/tinysystems/artemis-go/internal/mayfly"
	"github.com/tinysystems/artemis-go/internal/parallel"
	"github.com/tinysystems/artemis-go/internal/simclock"
)

// Options tunes the experiment harness. The zero value reproduces the
// paper's setup.
type Options struct {
	// BudgetUJ is the usable energy per boot; the default 800 µJ makes
	// power failures land inside the accel and send tasks (§5.1), like the
	// paper's capacitor does.
	BudgetUJ float64
	// ChargingDelays is the Figure-12/16 sweep; defaults to 1–10 minutes.
	ChargingDelays []simclock.Duration
	// NonTermReboots is the reboot budget after which a run is declared
	// non-terminating; defaults to 100.
	NonTermReboots int
	// BodyTemp configures the simulated patient; defaults to healthy 36.6.
	BodyTemp float64
	// Workers is the number of concurrent simulations per sweep. 0 or 1
	// runs serially on the calling goroutine (the bisection-friendly zero
	// value); pass parallel.DefaultWorkers() for one per CPU. Every sweep
	// returns results in sweep order regardless of Workers, so rendered
	// figures and tables are byte-identical at any worker count.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.BudgetUJ == 0 {
		o.BudgetUJ = 800
	}
	if len(o.ChargingDelays) == 0 {
		for m := 1; m <= 10; m++ {
			o.ChargingDelays = append(o.ChargingDelays, simclock.Duration(m)*simclock.Minute)
		}
	}
	if o.NonTermReboots == 0 {
		o.NonTermReboots = 100
	}
	if o.BodyTemp == 0 {
		o.BodyTemp = 36.6
	}
	return o
}

// Outcome summarises one benchmark run for the figure tables.
type Outcome struct {
	Completed bool
	// NonTerminated means the run was cut off by the reboot budget — the
	// wall-clock and energy are unbounded ("∞" in the rendered tables).
	NonTerminated bool
	Elapsed       simclock.Duration
	Active        simclock.Duration
	EnergyJ       float64
	Reboots       int
	PathRestarts  int
	PathSkips     int
}

// sweep runs fn over items through the shared fan-out executor with the
// options' worker count and returns the results in item order — the
// property that keeps parallel figure output byte-identical to serial.
// Each fn call must build its own simulation (core.New per call); the
// only state shared between concurrent calls is the immutable compiled
// monitor program.
func sweep[I, O any](o Options, items []I, fn func(i int, item I) (O, error)) ([]O, error) {
	workers := o.Workers
	if workers <= 0 {
		workers = 1
	}
	return parallel.Map(context.Background(), items, workers,
		func(_ context.Context, i int, item I) (O, error) { return fn(i, item) })
}

// runHealth executes the benchmark once on the chosen system and supply.
func runHealth(system core.System, supply core.SupplyConfig, o Options, hook func(*core.Config)) (*core.Report, Outcome, error) {
	app := health.NewWithTemp(o.BodyTemp)
	cfg := core.Config{
		System:     system,
		Graph:      app.Graph,
		StoreKeys:  health.Keys(),
		Supply:     supply,
		MaxReboots: o.NonTermReboots,
	}
	switch system {
	case core.Mayfly:
		cfg.Constraints = mayfly.HealthConstraints()
	case core.Ocelot:
		// The enforced counterpart of the spec's MITD: accel data consumed
		// by send at most 5 minutes old.
		cfg.FreshnessBounds = freshness.HealthBounds()
	default:
		// Compile the Figure-5 spec once per process instead of once per
		// run; the result is immutable and shared by concurrent sweeps.
		res, err := health.CompiledShared()
		if err != nil {
			return nil, Outcome{}, err
		}
		cfg.Compiled = res
	}
	if hook != nil {
		hook(&cfg)
	}
	f, err := core.New(cfg)
	if err != nil {
		return nil, Outcome{}, err
	}
	rep, err := f.Run()
	if err != nil {
		return nil, Outcome{}, err
	}
	out := Outcome{
		Completed:     rep.Completed,
		NonTerminated: rep.NonTerminated,
		Elapsed:       rep.Elapsed,
		Active:        rep.Active,
		EnergyJ:       float64(rep.Energy),
		Reboots:       rep.Reboots,
	}
	if rep.ArtemisStats != nil {
		out.PathRestarts = rep.ArtemisStats.PathRestarts
		out.PathSkips = rep.ArtemisStats.PathSkips
	}
	if rep.MayflyStats != nil {
		out.PathRestarts = rep.MayflyStats.PathRestarts
	}
	return rep, out, nil
}

func fixedDelay(budgetUJ float64, delay simclock.Duration) core.SupplyConfig {
	return core.SupplyConfig{Kind: core.SupplyFixedDelay, BudgetUJ: budgetUJ, Delay: delay}
}

func continuous() core.SupplyConfig {
	return core.SupplyConfig{Kind: core.SupplyContinuous}
}

// formatOutcomeTime renders a run's total time, with ∞ for non-termination.
func formatOutcomeTime(o Outcome) string {
	if o.NonTerminated {
		return "∞ (non-termination)"
	}
	return fmt.Sprintf("%.1f min", o.Elapsed.Minutes())
}

// formatOutcomeEnergy renders a run's energy, with ∞ for non-termination.
func formatOutcomeEnergy(o Outcome) string {
	if o.NonTerminated {
		return fmt.Sprintf("unbounded (>%.2f mJ)", o.EnergyJ*1e3)
	}
	return fmt.Sprintf("%.3f mJ", o.EnergyJ*1e3)
}
