package experiments

import (
	"fmt"

	"github.com/tinysystems/artemis-go/internal/chaos"
	"github.com/tinysystems/artemis-go/internal/core"
	"github.com/tinysystems/artemis-go/internal/health"
	"github.com/tinysystems/artemis-go/internal/simclock"
	"github.com/tinysystems/artemis-go/internal/trace"
)

// ReprogrammingRow measures one over-the-air spec update on the intermittent
// supply at a given chunk-loss rate: the adaptability cost of swapping the
// deployed monitors from the Figure-5 spec to its loosened v2 revision
// without restarting the application.
type ReprogrammingRow struct {
	// LossPct is the per-attempt drop probability on the transfer link.
	LossPct int
	// Swapped reports a clean activation of v2; otherwise the transfer ended
	// in a clean rollback with the reason in Rollback.
	Swapped  bool
	Rollback string
	// Chunks counts delivered bundle chunks, including retransmissions.
	Chunks int
	// EventsToSwap is ActivateSeq - RequestSeq: how many runtime events the
	// old spec still judged between the update request and the atomic flip.
	EventsToSwap uint64
	// RadioUJ is the transfer's radio energy; Missed counts event-sequence
	// gaps across the swap (zero = no event lost to reprogramming).
	RadioUJ float64
	Missed  int
	Outcome Outcome
}

// Reprogramming sweeps the OTA update across transfer loss rates on the
// paper's intermittent supply. Every run must end exactly-old or exactly-new;
// the sweep quantifies what loss costs in chunks, energy, and latency.
func Reprogramming(o Options) ([]ReprogrammingRow, error) {
	o = o.withDefaults()
	v2, err := health.CompiledSharedV2()
	if err != nil {
		return nil, err
	}
	losses := []float64{0, 0.10, 0.30}
	return sweep(o, losses, func(i int, loss float64) (ReprogrammingRow, error) {
		rep, out, err := runHealth(core.Artemis, fixedDelay(o.BudgetUJ, simclock.Second), o, func(cfg *core.Config) {
			cfg.SwapCompiled = v2
			cfg.SwapAt = 2
			if loss > 0 {
				// Seeded per row, so the sweep is deterministic at any
				// worker count.
				cfg.SwapLink = chaos.NewLossyLink(int64(41+i), loss, 0)
			}
		})
		if err != nil {
			return ReprogrammingRow{}, fmt.Errorf("reprogramming (%.0f%% loss): %w", 100*loss, err)
		}
		row := ReprogrammingRow{LossPct: int(100*loss + 0.5), Outcome: out}
		if st := rep.OTA; st != nil {
			row.Swapped = st.Swaps > 0
			row.Rollback = st.LastRollback
			row.Chunks = st.ChunksSent
			if row.Swapped {
				row.EventsToSwap = st.ActivateSeq - st.RequestSeq
			}
			row.RadioUJ = st.TransferEnergyUJ
			row.Missed = st.MissedEvents
		}
		return row, nil
	})
}

// TableReprogramming renders the reprogramming sweep.
func TableReprogramming(rows []ReprogrammingRow) *trace.Table {
	t := trace.NewTable(
		"Reprogramming — OTA monitor update v1 → v2 under transfer loss (800 µJ boots, 1 s recharge)",
		"chunk loss", "result", "chunks", "events to swap", "radio energy", "missed events")
	for _, r := range rows {
		result := "swapped to v2"
		events := fmt.Sprintf("%d", r.EventsToSwap)
		if !r.Swapped {
			result = fmt.Sprintf("rolled back (%s)", r.Rollback)
			events = "—"
		}
		t.AddRow(fmt.Sprintf("%d%%", r.LossPct), result,
			fmt.Sprintf("%d", r.Chunks), events,
			fmt.Sprintf("%.1f µJ", r.RadioUJ), fmt.Sprintf("%d", r.Missed))
	}
	return t
}

// RenderReprogramming prints the reprogramming evaluation.
func RenderReprogramming(rows []ReprogrammingRow) string {
	return TableReprogramming(rows).Render()
}
