package experiments

import (
	"fmt"

	"github.com/tinysystems/artemis-go/internal/core"
	"github.com/tinysystems/artemis-go/internal/trace"
)

// WearRow reports one component's FRAM activity for a single benchmark run:
// its static footprint versus the bytes actually written (the quantity FRAM
// endurance is budgeted against).
type WearRow struct {
	System    core.System
	Component string
	Footprint int
	WearBytes int64
}

// Wear measures per-component FRAM write traffic over one complete run on
// continuous power. It extends Table 2 with the dynamic dimension the paper
// leaves to future work ("minimizing further the runtime and monitoring
// overhead", §8): components that commit on every event — the monitors —
// wear their small footprint hundreds of times over per run, which is what
// an endurance budget or a wear-levelling allocator would have to absorb.
func Wear(o Options) ([]WearRow, error) {
	o = o.withDefaults()
	systems := []core.System{core.Artemis, core.Mayfly}
	perSys, err := sweep(o, systems, func(_ int, sys core.System) ([]WearRow, error) {
		rep, _, err := runHealth(sys, continuous(), o, nil)
		if err != nil {
			return nil, fmt.Errorf("wear (%v): %w", sys, err)
		}
		var rows []WearRow
		for _, owner := range sortedKeys(rep.Footprints) {
			rows = append(rows, WearRow{
				System:    sys,
				Component: owner,
				Footprint: rep.Footprints[owner],
				WearBytes: rep.Wear[owner],
			})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []WearRow
	for _, rs := range perSys {
		rows = append(rows, rs...)
	}
	return rows, nil
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// TableWear builds the wear table.
func TableWear(rows []WearRow) *trace.Table {
	t := trace.NewTable(
		"FRAM wear per component, one benchmark run (footprint vs bytes written)",
		"system", "component", "footprint", "bytes written", "turnover")
	for _, r := range rows {
		turnover := "-"
		if r.Footprint > 0 {
			turnover = fmt.Sprintf("%.1fx", float64(r.WearBytes)/float64(r.Footprint))
		}
		t.AddRow(
			r.System.String(),
			r.Component,
			fmt.Sprintf("%d", r.Footprint),
			fmt.Sprintf("%d", r.WearBytes),
			turnover,
		)
	}
	return t
}

// RenderWear prints the wear table.
func RenderWear(rows []WearRow) string { return TableWear(rows).Render() }
