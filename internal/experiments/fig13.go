package experiments

import (
	"fmt"

	"github.com/tinysystems/artemis-go/internal/action"
	"github.com/tinysystems/artemis-go/internal/core"
	"github.com/tinysystems/artemis-go/internal/monitor"
	"github.com/tinysystems/artemis-go/internal/simclock"
	"github.com/tinysystems/artemis-go/internal/trace"
)

// Fig13Result is the Figure-13 scenario: the decision timeline of one
// ARTEMIS run whose charging delay defeats the 5-minute MITD, showing the
// bounded restart attempts and the final path skip that keeps the
// application progressing.
type Fig13Result struct {
	Charging  simclock.Duration
	Timeline  *trace.Timeline
	Attempts  int // restartPath decisions attributed to the MITD machine
	Skipped   bool
	Completed bool
	Outcome   Outcome
}

// Figure13 runs the non-termination-prevention scenario (a 6-minute
// charging delay by default) and reconstructs the paper's timeline: three
// attempts to complete path #2, then skipPath, then the send task still
// executes via path #3.
func Figure13(o Options) (*Fig13Result, error) {
	o = o.withDefaults()
	charging := 6 * simclock.Minute
	res := &Fig13Result{
		Charging: charging,
		Timeline: trace.NewTimeline(fmt.Sprintf(
			"Figure 13 — ARTEMIS under a %v charging delay (MITD 5m, maxAttempt 3)", charging)),
	}
	hook := func(cfg *core.Config) {
		cfg.OnDecision = func(ev monitor.Event, d monitor.Decision) {
			switch d.Action {
			case action.RestartPath:
				if d.Machine == "MITD_send_accel" {
					res.Attempts++
					res.Timeline.Add(ev.Time,
						"attempt #%d: MITD violated at %s start → restartPath %d",
						res.Attempts, ev.Task, d.Path)
				}
			case action.SkipPath:
				if d.Machine == "MITD_send_accel" {
					res.Attempts++
					res.Skipped = true
					res.Timeline.Add(ev.Time,
						"attempt #%d: MITD violated again → maxAttempt exhausted → skipPath %d",
						res.Attempts, d.Path)
				}
			}
		}
	}
	rep, out, err := runHealth(core.Artemis, fixedDelay(o.BudgetUJ, charging), o, hook)
	if err != nil {
		return nil, fmt.Errorf("figure 13: %w", err)
	}
	res.Outcome = out
	res.Completed = rep.Completed
	if rep.Completed {
		res.Timeline.Add(simclock.Time(out.Elapsed),
			"application completed: path #3 executed send with the remaining data")
	}
	return res, nil
}

// RenderFigure13 prints the timeline with a summary line.
func RenderFigure13(r *Fig13Result) string {
	s := r.Timeline.Render()
	s += fmt.Sprintf("  summary: attempts=%d skipped=%v completed=%v total=%s reboots=%d\n",
		r.Attempts, r.Skipped, r.Completed, trace.FormatDuration(r.Outcome.Elapsed), r.Outcome.Reboots)
	return s
}
