package transform

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/tinysystems/artemis-go/internal/action"
	"github.com/tinysystems/artemis-go/internal/ir"
	"github.com/tinysystems/artemis-go/internal/simclock"
	"github.com/tinysystems/artemis-go/internal/spec"
	"github.com/tinysystems/artemis-go/internal/task"
)

const paperSpec = `
micSense: {
    maxTries: 10 onFail: skipPath;
}

send: {
    MITD: 5min dpTask: accel onFail: restartPath maxAttempt: 3 onFail: skipPath Path: 2;
    maxDuration: 100ms onFail: skipTask;
    collect: 1 dpTask: accel onFail: restartPath Path: 2;
    collect: 1 dpTask: micSense onFail: restartPath Path: 3;
}

calcAvg {
    collect: 10 dpTask: bodyTemp onFail: restartPath;
    dpData: avgTemp Range: [36, 38] onFail: completePath;
}

accel {
    maxTries: 10 onFail: skipPath;
}
`

// healthGraph mirrors the Figure-6 benchmark topology.
func healthGraph(t *testing.T) *task.Graph {
	t.Helper()
	send := &task.Task{Name: "send"}
	g, err := task.NewGraph(
		&task.Path{ID: 1, Tasks: []*task.Task{
			{Name: "bodyTemp"}, {Name: "calcAvg", DepData: "avgTemp"}, {Name: "heartRate"}, send,
		}},
		&task.Path{ID: 2, Tasks: []*task.Task{
			{Name: "accel"}, {Name: "filter"}, {Name: "classify"}, send,
		}},
		&task.Path{ID: 3, Tasks: []*task.Task{
			{Name: "micSense"}, send,
		}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func compilePaper(t *testing.T) *Result {
	t.Helper()
	s := spec.MustParse(paperSpec)
	res, err := Compile(s, Options{Graph: healthGraph(t), DataVars: []string{"avgTemp"}})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCompilePaperSpec(t *testing.T) {
	res := compilePaper(t)
	if got := len(res.Program.Machines); got != 8 {
		t.Fatalf("machines = %d, want 8 (one per property)", got)
	}
	if got := len(res.Bindings); got != 8 {
		t.Fatalf("bindings = %d, want 8", got)
	}
	// Every machine passes static checks (Compile already ran Check, but
	// verify individually for clearer failures).
	for _, m := range res.Program.Machines {
		if err := m.Check(); err != nil {
			t.Errorf("machine %s: %v", m.Name, err)
		}
	}
	// The printed program reparses: generated IR is valid concrete syntax.
	if _, err := ir.Parse(res.Program.String()); err != nil {
		t.Fatalf("generated IR does not reparse: %v\n%s", err, res.Program.String())
	}
}

func TestBindingPaths(t *testing.T) {
	res := compilePaper(t)
	byMachine := map[string]Binding{}
	for _, b := range res.Bindings {
		byMachine[b.Machine] = b
	}
	cases := []struct {
		machine string
		path    int
		kind    spec.Kind
	}{
		{"maxTries_micSense", 3, spec.KindMaxTries},
		{"maxTries_accel", 2, spec.KindMaxTries},
		{"MITD_send_accel", 2, spec.KindMITD},
		{"maxDuration_send", 0, spec.KindMaxDuration}, // send is merged; no explicit path
		{"collect_send_accel", 2, spec.KindCollect},
		{"collect_send_micSense", 3, spec.KindCollect},
		{"collect_calcAvg_bodyTemp", 1, spec.KindCollect},
		{"dpData_calcAvg_avgTemp", 1, spec.KindDpData},
	}
	for _, tc := range cases {
		b, ok := byMachine[tc.machine]
		if !ok {
			names := make([]string, 0, len(byMachine))
			for n := range byMachine {
				names = append(names, n)
			}
			t.Fatalf("machine %q missing; have %v", tc.machine, names)
		}
		if b.Path != tc.path || b.Kind != tc.kind {
			t.Errorf("%s: binding %+v, want path %d kind %v", tc.machine, b, tc.path, tc.kind)
		}
	}
}

func run(t *testing.T, m *ir.Machine, env ir.Env, evs []ir.Event) []ir.Failure {
	t.Helper()
	var all []ir.Failure
	for _, ev := range evs {
		fs, err := ir.Step(m, env, ev)
		if err != nil {
			t.Fatalf("step %v: %v", ev, err)
		}
		all = append(all, fs...)
	}
	return all
}

func at(min int) simclock.Time { return simclock.Time(simclock.Duration(min) * simclock.Minute) }

func TestCompiledMITDBehaviour(t *testing.T) {
	res := compilePaper(t)
	m := res.Program.Machine("MITD_send_accel")
	if m == nil {
		t.Fatal("MITD machine missing")
	}

	// In-time start on path 2: satisfied.
	env := ir.NewVolatileEnv(m)
	fs := run(t, m, env, []ir.Event{
		{Kind: ir.EvEnd, Task: "accel", Time: at(0), Path: 2},
		{Kind: ir.EvStart, Task: "send", Time: at(3), Path: 2},
	})
	if len(fs) != 0 {
		t.Fatalf("failures = %v", fs)
	}

	// send starting in path 3 never triggers the path-2 MITD.
	env = ir.NewVolatileEnv(m)
	fs = run(t, m, env, []ir.Event{
		{Kind: ir.EvEnd, Task: "accel", Time: at(0), Path: 2},
		{Kind: ir.EvStart, Task: "send", Time: at(60), Path: 3},
	})
	if len(fs) != 0 {
		t.Fatalf("cross-path failures = %v", fs)
	}

	// Three late attempts: restartPath, restartPath, then skipPath.
	env = ir.NewVolatileEnv(m)
	var evs []ir.Event
	for i := 0; i < 3; i++ {
		evs = append(evs,
			ir.Event{Kind: ir.EvEnd, Task: "accel", Time: at(20 * i), Path: 2},
			ir.Event{Kind: ir.EvStart, Task: "send", Time: at(20*i + 10), Path: 2},
		)
	}
	fs = run(t, m, env, evs)
	if len(fs) != 3 {
		t.Fatalf("failures = %v, want 3", fs)
	}
	want := []action.Action{action.RestartPath, action.RestartPath, action.SkipPath}
	for i, f := range fs {
		if f.Action != want[i] || f.Path != 2 {
			t.Errorf("failure %d = %v, want %v path 2", i, f, want[i])
		}
	}
}

func TestCompiledCollectAccumulatesAcrossFailures(t *testing.T) {
	res := compilePaper(t)
	m := res.Program.Machine("collect_calcAvg_bodyTemp")
	if m == nil {
		t.Fatal("collect machine missing")
	}
	env := ir.NewVolatileEnv(m)
	// Path 1 restarts until ten bodyTemp samples accumulate (§5.1 Path #1).
	failures := 0
	tNow := simclock.Time(0)
	for round := 0; round < 10; round++ {
		tNow += simclock.Time(simclock.Second)
		fs := run(t, m, env, []ir.Event{
			{Kind: ir.EvEnd, Task: "bodyTemp", Time: tNow, Path: 1},
			{Kind: ir.EvStart, Task: "calcAvg", Time: tNow + 1, Path: 1},
		})
		for _, f := range fs {
			if f.Action != action.RestartPath {
				t.Fatalf("round %d: action %v", round, f.Action)
			}
			failures++
		}
	}
	if failures != 9 {
		t.Fatalf("failures = %d, want 9 (tenth start succeeds)", failures)
	}
	// A re-execution of the consumer after a power failure still sees the
	// items: consumption happens only at the consumer's end event.
	fs := run(t, m, env, []ir.Event{{Kind: ir.EvStart, Task: "calcAvg", Time: tNow + 2, Path: 1}})
	if len(fs) != 0 {
		t.Fatalf("re-execution start failed despite unconsumed items: %v", fs)
	}
	// After the consumer completes, the counter is consumed and the next
	// round must collect afresh.
	run(t, m, env, []ir.Event{{Kind: ir.EvEnd, Task: "calcAvg", Time: tNow + 3, Path: 1}})
	fs = run(t, m, env, []ir.Event{{Kind: ir.EvStart, Task: "calcAvg", Time: tNow + 4, Path: 1}})
	if len(fs) != 1 {
		t.Fatalf("post-consumption start did not fail: %v", fs)
	}
}

func TestCompiledDpDataRange(t *testing.T) {
	res := compilePaper(t)
	m := res.Program.Machine("dpData_calcAvg_avgTemp")
	if m == nil {
		t.Fatal("dpData machine missing")
	}
	env := ir.NewVolatileEnv(m)
	fs := run(t, m, env, []ir.Event{
		{Kind: ir.EvEnd, Task: "calcAvg", Time: 1, Path: 1, Data: 36.8}, // healthy
	})
	if len(fs) != 0 {
		t.Fatalf("failures = %v", fs)
	}
	fs = run(t, m, env, []ir.Event{
		{Kind: ir.EvEnd, Task: "calcAvg", Time: 2, Path: 1, Data: 39.4}, // fever
	})
	if len(fs) != 1 || fs[0].Action != action.CompletePath {
		t.Fatalf("failures = %v, want completePath", fs)
	}
	fs = run(t, m, env, []ir.Event{
		{Kind: ir.EvEnd, Task: "calcAvg", Time: 3, Path: 1, Data: 34.9}, // hypothermia
	})
	if len(fs) != 1 || fs[0].Action != action.CompletePath {
		t.Fatalf("failures = %v, want completePath", fs)
	}
}

func TestCompiledMaxDuration(t *testing.T) {
	res := compilePaper(t)
	m := res.Program.Machine("maxDuration_send")
	if m == nil {
		t.Fatal("maxDuration machine missing")
	}
	env := ir.NewVolatileEnv(m)
	ms := func(n int) simclock.Time { return simclock.Time(simclock.Duration(n) * simclock.Millisecond) }
	fs := run(t, m, env, []ir.Event{
		{Kind: ir.EvStart, Task: "send", Time: ms(0), Path: 2},
		{Kind: ir.EvEnd, Task: "send", Time: ms(60), Path: 2},
	})
	if len(fs) != 0 {
		t.Fatalf("failures = %v", fs)
	}
	fs = run(t, m, env, []ir.Event{
		{Kind: ir.EvStart, Task: "send", Time: ms(1000), Path: 2},
		{Kind: ir.EvEnd, Task: "send", Time: ms(1200), Path: 2},
	})
	if len(fs) != 1 || fs[0].Action != action.SkipTask {
		t.Fatalf("failures = %v, want skipTask", fs)
	}
}

func TestCompilePeriodWithJitterAndMaxAttempt(t *testing.T) {
	g, err := task.NewGraph(&task.Path{ID: 1, Tasks: []*task.Task{{Name: "sample"}}})
	if err != nil {
		t.Fatal(err)
	}
	s := spec.MustParse(`sample { period: 1min jitter: 5s onFail: restartPath maxAttempt: 2 onFail: skipPath; }`)
	res, err := Compile(s, Options{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Program.Machines[0]
	env := ir.NewVolatileEnv(m)
	sec := func(n int) simclock.Time { return simclock.Time(simclock.Duration(n) * simclock.Second) }

	// On-time starts (within 65 s of each other): no failures.
	fs := run(t, m, env, []ir.Event{
		{Kind: ir.EvStart, Task: "sample", Time: sec(0), Path: 1},
		{Kind: ir.EvStart, Task: "sample", Time: sec(60), Path: 1},
		{Kind: ir.EvStart, Task: "sample", Time: sec(124), Path: 1},
	})
	if len(fs) != 0 {
		t.Fatalf("failures = %v", fs)
	}
	// First late start: restartPath; second: skipPath (maxAttempt 2).
	fs = run(t, m, env, []ir.Event{
		{Kind: ir.EvStart, Task: "sample", Time: sec(300), Path: 1},
		{Kind: ir.EvStart, Task: "sample", Time: sec(600), Path: 1},
	})
	if len(fs) != 2 || fs[0].Action != action.RestartPath || fs[1].Action != action.SkipPath {
		t.Fatalf("failures = %v", fs)
	}
}

func TestCompilePeriodWithoutMaxAttempt(t *testing.T) {
	g, err := task.NewGraph(&task.Path{ID: 1, Tasks: []*task.Task{{Name: "sample"}}})
	if err != nil {
		t.Fatal(err)
	}
	s := spec.MustParse(`sample { period: 1min onFail: restartTask; }`)
	res, err := Compile(s, Options{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Program.Machines[0]
	env := ir.NewVolatileEnv(m)
	fs := run(t, m, env, []ir.Event{
		{Kind: ir.EvStart, Task: "sample", Time: at(0), Path: 1},
		{Kind: ir.EvStart, Task: "sample", Time: at(10), Path: 1},
		{Kind: ir.EvStart, Task: "sample", Time: at(20), Path: 1},
	})
	if len(fs) != 2 {
		t.Fatalf("failures = %v, want 2 (every late start fails)", fs)
	}
}

func TestCompileMITDWithoutMaxAttempt(t *testing.T) {
	g := healthGraph(t)
	s := spec.MustParse(`send { MITD: 5min dpTask: accel onFail: restartPath Path: 2; }`)
	res, err := Compile(s, Options{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Program.Machines[0]
	env := ir.NewVolatileEnv(m)
	// Every violation keeps signalling restartPath — the Mayfly
	// non-termination behaviour when used without maxAttempt.
	var evs []ir.Event
	for i := 0; i < 5; i++ {
		evs = append(evs,
			ir.Event{Kind: ir.EvEnd, Task: "accel", Time: at(20 * i), Path: 2},
			ir.Event{Kind: ir.EvStart, Task: "send", Time: at(20*i + 10), Path: 2},
		)
	}
	fs := run(t, m, env, evs)
	if len(fs) != 5 {
		t.Fatalf("failures = %d, want 5", len(fs))
	}
	for _, f := range fs {
		if f.Action != action.RestartPath {
			t.Fatalf("action = %v", f.Action)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	g := healthGraph(t)
	if _, err := Compile(spec.MustParse("accel { maxTries: 3 onFail: skipPath; }"), Options{}); err == nil {
		t.Error("nil graph accepted")
	}
	// Spec referencing an unknown task fails validation.
	if _, err := Compile(spec.MustParse("ghost { maxTries: 3 onFail: skipPath; }"), Options{Graph: g}); err == nil {
		t.Error("unknown task accepted")
	}
	// dpData var not in DataVars.
	if _, err := Compile(spec.MustParse("calcAvg { dpData: avgTemp Range: [36,38] onFail: completePath; }"),
		Options{Graph: g}); err == nil {
		t.Error("undeclared data var accepted")
	}
	// dpData var mismatching the task's DepData declaration.
	if _, err := Compile(spec.MustParse("heartRate { dpData: avgTemp Range: [36,38] onFail: completePath; }"),
		Options{Graph: g, DataVars: []string{"avgTemp"}}); err == nil {
		t.Error("dpData on task without matching DepData accepted")
	}
}

func TestMachineNameDisambiguation(t *testing.T) {
	res := compilePaper(t)
	seen := map[string]bool{}
	for _, m := range res.Program.Machines {
		if seen[m.Name] {
			t.Fatalf("duplicate machine name %q", m.Name)
		}
		seen[m.Name] = true
	}
	// Two maxTries on the same task get sequence suffixes.
	g, err := task.NewGraph(&task.Path{ID: 1, Tasks: []*task.Task{{Name: "a"}}})
	if err != nil {
		t.Fatal(err)
	}
	s := spec.MustParse("a { maxTries: 3 onFail: skipPath; maxTries: 5 onFail: skipPath; }")
	res2, err := Compile(s, Options{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{res2.Program.Machines[0].Name, res2.Program.Machines[1].Name}
	if names[0] == names[1] {
		t.Fatalf("duplicate names %v", names)
	}
	if !strings.HasSuffix(names[1], "_2") {
		t.Fatalf("second machine name %q lacks sequence suffix", names[1])
	}
}

func TestCompileMinEnergy(t *testing.T) {
	g := healthGraph(t)
	res, err := Compile(spec.MustParse(`accel { minEnergy: 450uJ onFail: skipTask; }`),
		Options{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Program.Machines[0]
	env := ir.NewVolatileEnv(m)

	// Plenty of energy: no failure.
	fs := run(t, m, env, []ir.Event{
		{Kind: ir.EvStart, Task: "accel", Time: 1, Path: 2, Energy: 800},
	})
	if len(fs) != 0 {
		t.Fatalf("failures with full budget: %v", fs)
	}
	// Below threshold: skipTask.
	fs = run(t, m, env, []ir.Event{
		{Kind: ir.EvStart, Task: "accel", Time: 2, Path: 2, Energy: 200},
	})
	if len(fs) != 1 || fs[0].Action != action.SkipTask {
		t.Fatalf("failures = %v, want skipTask", fs)
	}
	// Other tasks unaffected regardless of level.
	fs = run(t, m, env, []ir.Event{
		{Kind: ir.EvStart, Task: "send", Time: 3, Path: 2, Energy: 1},
	})
	if len(fs) != 0 {
		t.Fatalf("cross-task failures: %v", fs)
	}
}

// Property: any structurally valid generated specification compiles to a
// checked program with one machine and one binding per property.
func TestCompileAnyValidSpecProperty(t *testing.T) {
	g := healthGraph(t)
	kinds := []spec.Kind{spec.KindMaxTries, spec.KindMaxDuration, spec.KindCollect, spec.KindPeriod, spec.KindMinEnergy}
	tasks := []string{"bodyTemp", "filter", "classify", "heartRate", "micSense", "accel"}
	f := func(kindSel, taskSel, vals []uint8) bool {
		n := len(kindSel)
		if n == 0 {
			return true
		}
		if n > 8 {
			n = 8
		}
		byTask := map[string][]spec.Property{}
		var order []string
		props := 0
		for i := 0; i < n; i++ {
			k := kinds[int(kindSel[i])%len(kinds)]
			taskName := tasks[pick(taskSel, i)%len(tasks)]
			v := int64(pick(vals, i)%9) + 1
			p := spec.Property{Kind: k, OnFail: spec.ActionSkipTask}
			switch k {
			case spec.KindMaxTries, spec.KindCollect:
				p.Count = v
			case spec.KindMaxDuration, spec.KindPeriod:
				p.Duration = simclock.Duration(v) * simclock.Second
			case spec.KindMinEnergy:
				p.EnergyUJ = float64(v) * 100
			}
			if k == spec.KindCollect {
				p.DpTask = "bodyTemp"
				if taskName == "bodyTemp" {
					p.DpTask = "accel"
				}
			}
			if _, seen := byTask[taskName]; !seen {
				order = append(order, taskName)
			}
			byTask[taskName] = append(byTask[taskName], p)
			props++
		}
		s := &spec.Spec{}
		for _, taskName := range order {
			s.Blocks = append(s.Blocks, spec.TaskBlock{Task: taskName, Props: byTask[taskName]})
		}
		res, err := Compile(s, Options{Graph: g})
		if err != nil {
			return false
		}
		if len(res.Program.Machines) != props || len(res.Bindings) != props {
			return false
		}
		return res.Program.Check() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func pick(xs []uint8, i int) int {
	if len(xs) == 0 {
		return 0
	}
	return int(xs[i%len(xs)])
}
