// Package transform is the model-to-model stage of the ARTEMIS generator
// pipeline (§3, §4.2): it lowers each property of a specification to one
// finite-state machine in the intermediate language, following the templates
// of Figure 7.
//
// One deliberate deviation from Figure 7 is documented here and in
// EXPERIMENTS.md: the collect template does not reset its item counter when
// it signals a failure. Figure 7's prose resets it, but under
// reset-on-failure the benchmark's Path #1 ("ARTEMIS restarts the first path
// until enough samples are collected", §5.1) could never accumulate ten
// bodyTemp samples — each restart would start over at one. Keeping the count
// across failures is the only semantics under which the paper's own
// evaluation terminates; the counter still resets when the consuming task
// starts successfully.
package transform

import (
	"fmt"
	"sync/atomic"

	"github.com/tinysystems/artemis-go/internal/action"
	"github.com/tinysystems/artemis-go/internal/codegen"
	"github.com/tinysystems/artemis-go/internal/ir"
	"github.com/tinysystems/artemis-go/internal/spec"
	"github.com/tinysystems/artemis-go/internal/task"
)

// Options configures compilation.
type Options struct {
	// Graph is the application task graph; required for validation and for
	// inferring the path a property is bound to.
	Graph *task.Graph
	// DataVars lists the store slots available as dpData variables.
	DataVars []string
}

// Binding records which machine checks which property — the runtime uses it
// to re-initialise the monitors of a restarted path (§3.3).
type Binding struct {
	Machine string
	Task    string
	Kind    spec.Kind
	// Path is the path the property is scoped to: the explicit Path clause,
	// else the only path containing the task, else 0 (unscoped).
	Path int
	// AllPaths lists every path containing the task; path re-initialisation
	// uses it to reach unscoped monitors of merged tasks.
	AllPaths []int
}

// Result is a compiled monitor program with its property bindings.
type Result struct {
	Program  *ir.Program
	Bindings []Binding

	stepper atomic.Pointer[codegen.Program]
}

// Stepper returns the closure-compiled form of the result's program,
// compiling it on first use. The compiled program is immutable and cached on
// the Result, so shared results (health.CompiledShared and friends) compile
// once per process however many frameworks they feed. Concurrent first calls
// may compile twice; both products are equivalent and either may win.
func (r *Result) Stepper() *codegen.Program {
	if p := r.stepper.Load(); p != nil {
		return p
	}
	p := codegen.CompileProgram(r.Program)
	r.stepper.Store(p)
	return p
}

// graphInfo adapts a task.Graph (plus the data-variable list) to
// spec.GraphInfo.
type graphInfo struct {
	g    *task.Graph
	data map[string]bool
}

func (gi graphInfo) HasTask(name string) bool    { return gi.g.Task(name) != nil }
func (gi graphInfo) HasPath(id int) bool         { return gi.g.PathByID(id) != nil }
func (gi graphInfo) TaskPaths(name string) []int { return gi.g.PathsContaining(name) }
func (gi graphInfo) HasData(name string) bool    { return gi.data[name] }

// Compile validates the specification against the graph and lowers every
// property to a state machine.
func Compile(s *spec.Spec, opts Options) (*Result, error) {
	if opts.Graph == nil {
		return nil, fmt.Errorf("transform: Options.Graph is required")
	}
	gi := graphInfo{g: opts.Graph, data: map[string]bool{}}
	for _, v := range opts.DataVars {
		gi.data[v] = true
	}
	if err := spec.Validate(s, gi); err != nil {
		return nil, fmt.Errorf("transform: %w", err)
	}
	res := &Result{Program: &ir.Program{}}
	used := map[string]int{}
	for _, blk := range s.Blocks {
		for _, p := range blk.Props {
			base := machineName(blk.Task, p)
			used[base]++
			m, err := lower(blk.Task, p, base, used[base], opts.Graph)
			if err != nil {
				return nil, err
			}
			res.Program.Machines = append(res.Program.Machines, m)
			res.Bindings = append(res.Bindings, Binding{
				Machine:  m.Name,
				Task:     blk.Task,
				Kind:     p.Kind,
				Path:     effectivePath(blk.Task, p, opts.Graph),
				AllPaths: opts.Graph.PathsContaining(blk.Task),
			})
		}
	}
	if err := res.Program.Check(); err != nil {
		return nil, fmt.Errorf("transform: generated program failed checks (transform bug): %w", err)
	}
	return res, nil
}

// effectivePath resolves the path a property is bound to.
func effectivePath(taskName string, p spec.Property, g *task.Graph) int {
	if p.Path != 0 {
		return p.Path
	}
	if ids := g.PathsContaining(taskName); len(ids) == 1 {
		return ids[0]
	}
	return 0
}

// lower builds the Figure-7 machine for one property. seq disambiguates
// otherwise-identical machine names (two maxTries on the same task).
func lower(taskName string, p spec.Property, base string, seq int, g *task.Graph) (*ir.Machine, error) {
	name := base
	if seq > 1 {
		name = fmt.Sprintf("%s_%d", base, seq)
	}
	switch p.Kind {
	case spec.KindMaxTries:
		return maxTriesMachine(name, taskName, p), nil
	case spec.KindMaxDuration:
		return maxDurationMachine(name, taskName, p), nil
	case spec.KindMITD:
		return mitdMachine(name, taskName, p), nil
	case spec.KindCollect:
		return collectMachine(name, taskName, p), nil
	case spec.KindDpData:
		return dpDataMachine(name, taskName, p, g)
	case spec.KindPeriod:
		return periodMachine(name, taskName, p), nil
	case spec.KindMinEnergy:
		return minEnergyMachine(name, taskName, p), nil
	}
	return nil, fmt.Errorf("transform: unsupported property kind %v", p.Kind)
}

func machineName(taskName string, p spec.Property) string {
	name := fmt.Sprintf("%v_%s", p.Kind, taskName)
	if p.DpTask != "" {
		name += "_" + p.DpTask
	}
	if p.DataVar != "" {
		name += "_" + p.DataVar
	}
	return name
}

// Expression helpers.

func taskIs(name string) ir.Expr {
	return ir.Binary{Op: "==", L: ir.Ident{Name: "task"}, R: ir.Lit{V: ir.Str(name)}}
}

func pathIs(id int) ir.Expr {
	return ir.Binary{Op: "==", L: ir.Ident{Name: "path"}, R: ir.Lit{V: ir.Int(int64(id))}}
}

func and(l, r ir.Expr) ir.Expr { return ir.Binary{Op: "&&", L: l, R: r} }

func or(l, r ir.Expr) ir.Expr { return ir.Binary{Op: "||", L: l, R: r} }

// onTask narrows a task match to an explicit path when the property has one
// (path merging, §3.2): "send" in path 2 is a different obligation from
// "send" in path 3.
func onTask(name string, p spec.Property) ir.Expr {
	e := taskIs(name)
	if p.Path != 0 {
		e = and(e, pathIs(p.Path))
	}
	return e
}

func intVar(name string) ir.VarDecl {
	return ir.VarDecl{Name: name, Type: ir.TInt, Init: ir.Int(0)}
}

func boolVar(name string) ir.VarDecl {
	return ir.VarDecl{Name: name, Type: ir.TBool, Init: ir.Bool(false)}
}

func assign(name string, x ir.Expr) ir.Stmt { return ir.Assign{Name: name, X: x} }

func assignInt(name string, v int64) ir.Stmt { return assign(name, ir.Lit{V: ir.Int(v)}) }

func inc(name string) ir.Stmt {
	return assign(name, ir.Binary{Op: "+", L: ir.Ident{Name: name}, R: ir.Lit{V: ir.Int(1)}})
}

func failStmt(act action.Action, path int) ir.Stmt { return ir.Fail{Action: act, Path: path} }

func lit(i int64) ir.Expr { return ir.Lit{V: ir.Int(i)} }

func identE(name string) ir.Expr { return ir.Ident{Name: name} }

// maxTriesMachine: Figure 7, first machine. Counts start attempts of the
// task; at the limit it signals the onFail action.
func maxTriesMachine(name, taskName string, p spec.Property) *ir.Machine {
	match := onTask(taskName, p)
	return &ir.Machine{
		Name:    name,
		Vars:    []ir.VarDecl{intVar("i")},
		Initial: "NotStarted",
		States: []ir.State{
			{Name: "NotStarted", Transitions: []ir.Transition{{
				Trigger: ir.TrigStart, Guard: match, Target: "Started",
				Body: []ir.Stmt{assignInt("i", 1)},
			}}},
			{Name: "Started", Transitions: []ir.Transition{
				{
					Trigger: ir.TrigStart,
					Guard:   and(match, ir.Binary{Op: "<", L: identE("i"), R: lit(p.Count)}),
					Target:  "Started",
					Body:    []ir.Stmt{inc("i")},
				},
				{
					Trigger: ir.TrigStart,
					Guard:   and(match, ir.Binary{Op: ">=", L: identE("i"), R: lit(p.Count)}),
					Target:  "NotStarted",
					Body:    []ir.Stmt{assignInt("i", 0), failStmt(p.OnFail, p.Path)},
				},
				{
					Trigger: ir.TrigEnd, Guard: match, Target: "NotStarted",
					Body: []ir.Stmt{assignInt("i", 0)},
				},
			}},
		},
	}
}

// maxDurationMachine: Figure 7, second machine. The start time is recorded
// once; any event past the allowed interval exposes the violation.
func maxDurationMachine(name, taskName string, p spec.Property) *ir.Machine {
	match := onTask(taskName, p)
	deadline := ir.Binary{Op: "+", L: identE("start"), R: lit(int64(p.Duration))}
	return &ir.Machine{
		Name:    name,
		Vars:    []ir.VarDecl{intVar("start")},
		Initial: "NotStarted",
		States: []ir.State{
			{Name: "NotStarted", Transitions: []ir.Transition{{
				Trigger: ir.TrigStart, Guard: match, Target: "Started",
				Body: []ir.Stmt{assign("start", identE("t"))},
			}}},
			{Name: "Started", Transitions: []ir.Transition{
				{
					Trigger: ir.TrigEnd,
					Guard:   and(match, ir.Binary{Op: "<=", L: identE("t"), R: deadline}),
					Target:  "NotStarted",
				},
				{
					Trigger: ir.TrigAny,
					Guard:   ir.Binary{Op: ">", L: identE("t"), R: deadline},
					Target:  "NotStarted",
					Body:    []ir.Stmt{failStmt(p.OnFail, p.Path)},
				},
			}},
		},
	}
}

// mitdMachine: Figure 7, fourth machine. The dependent task's end time is
// recorded; the consuming task must start within the limit. Violations
// 1..maxAttempt-1 signal OnFail; violation maxAttempt signals the
// exhaustion action (skipPath in Figure 5) to guarantee progress.
func mitdMachine(name, taskName string, p spec.Property) *ir.Machine {
	match := onTask(taskName, p)
	depEnd := taskIs(p.DpTask)
	late := ir.Binary{Op: ">", L: ir.Binary{Op: "-", L: identE("t"), R: identE("endB")}, R: lit(int64(p.Duration))}
	inTime := ir.Binary{Op: "<=", L: ir.Binary{Op: "-", L: identE("t"), R: identE("endB")}, R: lit(int64(p.Duration))}

	// The obligation holds until the consuming task *completes*: a start
	// that passes the check keeps the machine in WaitStartA, because a power
	// failure during the task re-executes it after an arbitrary charging
	// delay and that re-start must be re-checked (this is exactly the §5.1
	// scenario: failures land inside send, and the MITD is violated by the
	// restarted send, not the first one). Completion of the task discharges
	// the obligation.
	waitStart := ir.State{Name: "WaitStartA"}
	waitStart.Transitions = append(waitStart.Transitions,
		ir.Transition{
			Trigger: ir.TrigEnd, Guard: depEnd, Target: "WaitStartA",
			Body: []ir.Stmt{assign("endB", identE("t"))}, // fresher data re-arms the window
		},
		ir.Transition{
			Trigger: ir.TrigEnd, Guard: match, Target: "WaitEndB",
			Body: []ir.Stmt{assignInt("attempts", 0)},
		},
		ir.Transition{
			Trigger: ir.TrigStart, Guard: and(match, inTime), Target: "WaitStartA",
		},
	)
	if p.MaxAttempt > 0 {
		waitStart.Transitions = append(waitStart.Transitions,
			ir.Transition{
				Trigger: ir.TrigStart,
				Guard: and(match, and(late,
					ir.Binary{Op: "<", L: identE("attempts"), R: lit(p.MaxAttempt - 1)})),
				Target: "WaitStartA",
				Body:   []ir.Stmt{inc("attempts"), failStmt(p.OnFail, p.Path)},
			},
			ir.Transition{
				Trigger: ir.TrigStart,
				Guard: and(match, and(late,
					ir.Binary{Op: ">=", L: identE("attempts"), R: lit(p.MaxAttempt - 1)})),
				Target: "WaitEndB",
				Body:   []ir.Stmt{assignInt("attempts", 0), failStmt(p.MaxAttemptAction, p.Path)},
			},
		)
	} else {
		waitStart.Transitions = append(waitStart.Transitions,
			ir.Transition{
				Trigger: ir.TrigStart, Guard: and(match, late), Target: "WaitStartA",
				Body: []ir.Stmt{failStmt(p.OnFail, p.Path)},
			},
		)
	}
	return &ir.Machine{
		Name:    name,
		Vars:    []ir.VarDecl{intVar("endB"), intVar("attempts")},
		Initial: "WaitEndB",
		States: []ir.State{
			{Name: "WaitEndB", Transitions: []ir.Transition{{
				Trigger: ir.TrigEnd, Guard: depEnd, Target: "WaitStartA",
				Body: []ir.Stmt{assign("endB", identE("t"))},
			}}},
			waitStart,
		},
	}
}

// collectMachine: Figure 7, third machine, with two adjustments for
// intermittent re-execution (see the package comment): the counter is kept
// across failures, and the collected items are consumed when the consuming
// task *ends* rather than when it starts — a power failure between the
// consumer's start and its completion re-executes the task, and the re-run's
// start check must still see the items it is about to consume.
func collectMachine(name, taskName string, p spec.Property) *ir.Machine {
	match := onTask(taskName, p)
	return &ir.Machine{
		Name:    name,
		Vars:    []ir.VarDecl{intVar("i")},
		Initial: "Counting",
		States: []ir.State{
			{Name: "Counting", Transitions: []ir.Transition{
				{
					Trigger: ir.TrigEnd, Guard: taskIs(p.DpTask), Target: "Counting",
					Body: []ir.Stmt{inc("i")},
				},
				{
					Trigger: ir.TrigEnd, Guard: match, Target: "Counting",
					Body: []ir.Stmt{assignInt("i", 0)}, // items consumed on completion
				},
				{
					Trigger: ir.TrigStart,
					Guard:   and(match, ir.Binary{Op: "<", L: identE("i"), R: lit(p.Count)}),
					Target:  "Counting",
					Body:    []ir.Stmt{failStmt(p.OnFail, p.Path)},
				},
			}},
		},
	}
}

// dpDataMachine checks the task's dependent data against the range when the
// task ends (the avgTemp emergency check of Figure 5).
func dpDataMachine(name, taskName string, p spec.Property, g *task.Graph) (*ir.Machine, error) {
	tk := g.Task(taskName)
	if tk == nil {
		return nil, fmt.Errorf("transform: dpData on unknown task %q", taskName)
	}
	if tk.DepData != p.DataVar {
		return nil, fmt.Errorf("transform: dpData variable %q does not match task %q's declared dependent data %q",
			p.DataVar, taskName, tk.DepData)
	}
	match := onTask(taskName, p)
	outOfRange := or(
		ir.Binary{Op: "<", L: identE("data"), R: ir.Lit{V: ir.Float(p.Range.Lo)}},
		ir.Binary{Op: ">", L: identE("data"), R: ir.Lit{V: ir.Float(p.Range.Hi)}},
	)
	return &ir.Machine{
		Name:    name,
		Initial: "Watching",
		States: []ir.State{
			{Name: "Watching", Transitions: []ir.Transition{{
				Trigger: ir.TrigEnd,
				Guard:   and(match, outOfRange),
				Target:  "Watching",
				Body:    []ir.Stmt{failStmt(p.OnFail, p.Path)},
			}}},
		},
	}, nil
}

// periodMachine checks that consecutive starts of the task are no further
// apart than period + jitter. Early starts are accepted: the property
// guards against charging delays stretching the schedule (Table 1), not
// against running ahead of it.
func periodMachine(name, taskName string, p spec.Property) *ir.Machine {
	match := onTask(taskName, p)
	budget := int64(p.Duration + p.Jitter)
	late := ir.Binary{Op: ">", L: ir.Binary{Op: "-", L: identE("t"), R: identE("last")}, R: lit(budget)}
	onTimeG := ir.Binary{Op: "<=", L: ir.Binary{Op: "-", L: identE("t"), R: identE("last")}, R: lit(budget)}

	idle := ir.State{Name: "Idle"}
	first := ir.Transition{
		Trigger: ir.TrigStart,
		Guard:   and(match, ir.Unary{Op: "!", X: identE("started")}),
		Target:  "Idle",
		Body:    []ir.Stmt{assign("started", ir.Lit{V: ir.Bool(true)}), assign("last", identE("t"))},
	}
	ok := ir.Transition{
		Trigger: ir.TrigStart,
		Guard:   and(match, and(identE("started"), onTimeG)),
		Target:  "Idle",
		Body:    []ir.Stmt{assign("last", identE("t")), assignInt("attempts", 0)},
	}
	idle.Transitions = append(idle.Transitions, first, ok)
	if p.MaxAttempt > 0 {
		idle.Transitions = append(idle.Transitions,
			ir.Transition{
				Trigger: ir.TrigStart,
				Guard: and(match, and(identE("started"), and(late,
					ir.Binary{Op: "<", L: identE("attempts"), R: lit(p.MaxAttempt - 1)}))),
				Target: "Idle",
				Body:   []ir.Stmt{assign("last", identE("t")), inc("attempts"), failStmt(p.OnFail, p.Path)},
			},
			ir.Transition{
				Trigger: ir.TrigStart,
				Guard: and(match, and(identE("started"), and(late,
					ir.Binary{Op: ">=", L: identE("attempts"), R: lit(p.MaxAttempt - 1)}))),
				Target: "Idle",
				Body:   []ir.Stmt{assign("last", identE("t")), assignInt("attempts", 0), failStmt(p.MaxAttemptAction, p.Path)},
			},
		)
	} else {
		idle.Transitions = append(idle.Transitions,
			ir.Transition{
				Trigger: ir.TrigStart,
				Guard:   and(match, and(identE("started"), late)),
				Target:  "Idle",
				Body:    []ir.Stmt{assign("last", identE("t")), failStmt(p.OnFail, p.Path)},
			},
		)
	}
	return &ir.Machine{
		Name:    name,
		Vars:    []ir.VarDecl{intVar("last"), intVar("attempts"), boolVar("started")},
		Initial: "Idle",
		States:  []ir.State{idle},
	}
}

// minEnergyMachine implements the §4.2.2 extension property: the supply
// level (the "energy" event field, filled from the runtime's capacitor
// primitive) must be at least the threshold when the task starts; otherwise
// the onFail action — typically skipTask — avoids starting work that a
// brown-out would only waste.
func minEnergyMachine(name, taskName string, p spec.Property) *ir.Machine {
	match := onTask(taskName, p)
	tooLow := ir.Binary{Op: "<", L: identE("energy"), R: ir.Lit{V: ir.Float(p.EnergyUJ)}}
	return &ir.Machine{
		Name:    name,
		Initial: "Watching",
		States: []ir.State{
			{Name: "Watching", Transitions: []ir.Transition{{
				Trigger: ir.TrigStart,
				Guard:   and(match, tooLow),
				Target:  "Watching",
				Body:    []ir.Stmt{failStmt(p.OnFail, p.Path)},
			}}},
		},
	}
}
