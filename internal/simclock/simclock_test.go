package simclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestZeroClock(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock Now = %d, want 0", c.Now())
	}
	if c.OnTime() != 0 || c.OffTime() != 0 || c.Reboots() != 0 {
		t.Fatalf("zero clock accounting non-zero: on=%d off=%d reboots=%d",
			c.OnTime(), c.OffTime(), c.Reboots())
	}
}

func TestAdvance(t *testing.T) {
	var c Clock
	c.Advance(5 * Second)
	c.Advance(100 * Millisecond)
	want := Time(5*Second + 100*Millisecond)
	if c.Now() != want {
		t.Fatalf("Now = %d, want %d", c.Now(), want)
	}
	if c.OnTime() != Duration(want) {
		t.Fatalf("OnTime = %d, want %d", c.OnTime(), want)
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestPowerFailureNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PowerFailure(-1) did not panic")
		}
	}()
	var c Clock
	c.PowerFailure(-1)
}

func TestPowerFailureKeepsCounting(t *testing.T) {
	var c Clock
	c.Advance(2 * Second)
	c.PowerFailure(3 * Minute)
	c.Advance(1 * Second)
	want := Time(3*Second + 3*Minute)
	if c.Now() != want {
		t.Fatalf("Now = %v, want %v", c.Now(), want)
	}
	if c.Reboots() != 1 {
		t.Fatalf("Reboots = %d, want 1", c.Reboots())
	}
	if c.OffTime() != 3*Minute {
		t.Fatalf("OffTime = %v, want 3m", c.OffTime())
	}
}

func TestDrift(t *testing.T) {
	c := Clock{DriftPPM: 1e6} // clock runs 2x fast
	c.Advance(1 * Second)
	if c.Now() != Time(2*Second) {
		t.Fatalf("Now with 100%% drift = %v, want 2s", c.Now())
	}
}

func TestOffJitterBounded(t *testing.T) {
	c := Clock{OffJitterPPM: 1e5, Rand: rand.New(rand.NewSource(42))}
	for i := 0; i < 100; i++ {
		before := c.Now()
		c.PowerFailure(1 * Minute)
		got := c.Now().Sub(before)
		lo, hi := Minute*9/10, Minute*11/10
		if got < lo || got > hi {
			t.Fatalf("jittered off period %v outside [%v, %v]", got, lo, hi)
		}
	}
}

func TestReset(t *testing.T) {
	var c Clock
	c.Advance(Second)
	c.PowerFailure(Minute)
	c.Reset()
	if c.Now() != 0 || c.OnTime() != 0 || c.OffTime() != 0 || c.Reboots() != 0 {
		t.Fatal("Reset did not clear clock state")
	}
}

// Property: the clock is monotonic under any sequence of advances and power
// failures (with no jitter).
func TestMonotonicityProperty(t *testing.T) {
	f := func(steps []uint16, offs []uint16) bool {
		var c Clock
		prev := c.Now()
		for i := range steps {
			c.Advance(Duration(steps[i]))
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
			if i < len(offs) {
				c.PowerFailure(Duration(offs[i]))
				if c.Now() < prev {
					return false
				}
				prev = c.Now()
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Now equals OnTime + OffTime for a drift-free, jitter-free clock.
func TestTimeDecompositionProperty(t *testing.T) {
	f := func(ons []uint16, offs []uint16) bool {
		var c Clock
		for _, d := range ons {
			c.Advance(Duration(d))
		}
		for _, d := range offs {
			c.PowerFailure(Duration(d))
		}
		return Duration(c.Now()) == c.OnTime()+c.OffTime()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCyclesToDuration(t *testing.T) {
	tests := []struct {
		cycles int64
		hz     float64
		want   Duration
	}{
		{0, 1e6, 0},
		{-5, 1e6, 0},
		{1, 1e6, Microsecond},    // 1 cycle at 1 MHz = 1 µs
		{1000, 1e6, Millisecond}, // 1000 cycles at 1 MHz = 1 ms
		{1_000_000, 1e6, Second}, // 1M cycles at 1 MHz = 1 s
		{8, 8e6, Microsecond},    // 8 cycles at 8 MHz = 1 µs
		{1, 16e6, Microsecond},   // sub-µs work rounds up to 1 µs
		{60_000_000, 1e6, 60 * Second},
	}
	for _, tt := range tests {
		if got := CyclesToDuration(tt.cycles, tt.hz); got != tt.want {
			t.Errorf("CyclesToDuration(%d, %g) = %v, want %v", tt.cycles, tt.hz, got, tt.want)
		}
	}
}

func TestParseDuration(t *testing.T) {
	tests := []struct {
		in   string
		want Duration
		ok   bool
	}{
		{"5min", 5 * Minute, true},
		{"5m", 5 * Minute, true},
		{"100ms", 100 * Millisecond, true},
		{"3s", 3 * Second, true},
		{"3sec", 3 * Second, true},
		{"2h", 2 * Hour, true},
		{"7us", 7 * Microsecond, true},
		{"0s", 0, true},
		{"", 0, false},
		{"ms", 0, false},
		{"5", 0, false},
		{"5fortnights", 0, false},
		{"-3s", 0, false},
	}
	for _, tt := range tests {
		got, err := ParseDuration(tt.in)
		if (err == nil) != tt.ok {
			t.Errorf("ParseDuration(%q) err = %v, want ok=%v", tt.in, err, tt.ok)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("ParseDuration(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestDurationString(t *testing.T) {
	tests := []struct {
		d    Duration
		want string
	}{
		{0, "0s"},
		{5 * Minute, "5m"},
		{100 * Millisecond, "100ms"},
		{3 * Second, "3s"},
		{2 * Hour, "2h"},
		{1500, "1500us"},
	}
	for _, tt := range tests {
		if got := tt.d.String(); got != tt.want {
			t.Errorf("(%d).String() = %q, want %q", int64(tt.d), got, tt.want)
		}
	}
}

// Property: ParseDuration(d.String()) == d for unit-aligned durations.
func TestDurationStringRoundTripProperty(t *testing.T) {
	units := []Duration{Microsecond, Millisecond, Second, Minute, Hour}
	f := func(n uint16, unitIdx uint8) bool {
		d := Duration(n) * units[int(unitIdx)%len(units)]
		got, err := ParseDuration(d.String())
		return err == nil && got == d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeSubAndAdd(t *testing.T) {
	t0 := Time(10 * Second)
	t1 := t0.Add(5 * Second)
	if t1.Sub(t0) != 5*Second {
		t.Fatalf("Sub = %v, want 5s", t1.Sub(t0))
	}
}
