// Package simclock provides the simulated, persistent notion of time used by
// the whole framework.
//
// Intermittent systems lose their volatile state — including timer registers —
// on every power failure. ARTEMIS, like Mayfly and TICS, assumes a persistent
// timekeeping facility (e.g. remanence timekeepers such as CusTARD, or
// harvested-power time estimation) so that timestamps attached to monitor
// events remain meaningful across reboots. This package models exactly that
// facility: a clock whose value is the number of microseconds since the very
// first boot of the device, which keeps counting through power failures and
// may optionally accumulate a bounded estimation error while the device is
// off, mimicking the accuracy limits of real remanence timekeepers.
//
// All simulation time in this repository is expressed as simclock.Time and
// advanced explicitly by the device model; nothing reads the host clock, so
// every experiment is deterministic.
package simclock

import (
	"fmt"
	"math/rand"
)

// Time is an absolute instant: microseconds elapsed since the first boot of
// the simulated device. It survives power failures (persistent timekeeping).
type Time int64

// Duration is a span of simulated time in microseconds.
type Duration int64

// Convenient duration units.
const (
	Microsecond Duration = 1
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Milliseconds returns the duration as floating-point milliseconds.
func (d Duration) Milliseconds() float64 { return float64(d) / float64(Millisecond) }

// Minutes returns the duration as floating-point minutes.
func (d Duration) Minutes() float64 { return float64(d) / float64(Minute) }

// String renders the duration with an adaptive unit, e.g. "5m", "100ms".
func (d Duration) String() string {
	switch {
	case d == 0:
		return "0s"
	case d%Hour == 0:
		return fmt.Sprintf("%dh", d/Hour)
	case d%Minute == 0:
		return fmt.Sprintf("%dm", d/Minute)
	case d%Second == 0:
		return fmt.Sprintf("%ds", d/Second)
	case d%Millisecond == 0:
		return fmt.Sprintf("%dms", d/Millisecond)
	default:
		return fmt.Sprintf("%dus", int64(d))
	}
}

// String renders the instant as a duration since first boot.
func (t Time) String() string { return Duration(t).String() }

// Clock is the persistent simulated clock. The zero value is a clock at the
// instant of first boot with perfect off-time accounting.
//
// DriftPPM and OffJitterPPM model the two error sources of real persistent
// timekeepers: crystal drift while powered, and estimation error of the time
// spent powered off. Both default to zero (a perfect clock), which is what
// the paper's evaluation assumes.
type Clock struct {
	// DriftPPM is the powered-on drift in parts per million. Positive
	// values make the clock run fast.
	DriftPPM float64
	// OffJitterPPM bounds the random error applied to each off period, in
	// parts per million of that period. Requires Rand to be set.
	OffJitterPPM float64
	// Rand is the randomness source for off-period jitter. May be nil when
	// OffJitterPPM is zero.
	Rand *rand.Rand

	now Time

	// Accounting, useful for experiment reports.
	onTime  Duration // simulated time spent powered on
	offTime Duration // simulated time spent powered off (charging)
	reboots int
}

// Now returns the current simulated instant.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d of powered-on execution time.
// It panics if d is negative: the simulation never moves backwards.
func (c *Clock) Advance(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("simclock: negative advance %d", d))
	}
	if c.DriftPPM != 0 {
		d += Duration(float64(d) * c.DriftPPM / 1e6)
	}
	c.now = c.now.Add(d)
	c.onTime += d
}

// PowerFailure records a power failure followed by off microseconds of
// charging. The clock keeps counting through the outage — that is the whole
// point of persistent timekeeping — but may add bounded jitter to model the
// estimation error of remanence-based timekeepers.
func (c *Clock) PowerFailure(off Duration) {
	if off < 0 {
		panic(fmt.Sprintf("simclock: negative off period %d", off))
	}
	if c.OffJitterPPM != 0 && c.Rand != nil {
		jitter := Duration(float64(off) * c.OffJitterPPM / 1e6 * (2*c.Rand.Float64() - 1))
		if off+jitter < 0 {
			jitter = -off
		}
		off += jitter
	}
	c.now = c.now.Add(off)
	c.offTime += off
	c.reboots++
}

// OnTime returns the total powered-on time accumulated so far.
func (c *Clock) OnTime() Duration { return c.onTime }

// OffTime returns the total powered-off (charging) time accumulated so far.
func (c *Clock) OffTime() Duration { return c.offTime }

// Reboots returns the number of power failures recorded so far.
func (c *Clock) Reboots() int { return c.reboots }

// Reset returns the clock to the first-boot state. Only experiments use
// this; a real persistent clock is never reset.
func (c *Clock) Reset() {
	c.now = 0
	c.onTime = 0
	c.offTime = 0
	c.reboots = 0
}

// CyclesToDuration converts CPU cycles at the given clock frequency to a
// simulated duration, rounding to the nearest microsecond (and at least one
// microsecond for any positive cycle count, so that work never takes zero
// time).
func CyclesToDuration(cycles int64, hz float64) Duration {
	if cycles <= 0 {
		return 0
	}
	d := Duration(float64(cycles) / hz * float64(Second))
	if d == 0 {
		d = Microsecond
	}
	return d
}

// ParseDuration parses the duration literals accepted by the ARTEMIS property
// specification language: an integer immediately followed by one of the units
// us, ms, s, min, m, h (e.g. "5min", "100ms", "3s"). Both "m" and "min"
// denote minutes, matching the paper's examples.
func ParseDuration(s string) (Duration, error) {
	if s == "" {
		return 0, fmt.Errorf("simclock: empty duration")
	}
	i := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		i++
	}
	if i == 0 {
		return 0, fmt.Errorf("simclock: duration %q does not start with a number", s)
	}
	var n int64
	for _, ch := range s[:i] {
		n = n*10 + int64(ch-'0')
	}
	var unit Duration
	switch s[i:] {
	case "us":
		unit = Microsecond
	case "ms":
		unit = Millisecond
	case "s", "sec":
		unit = Second
	case "m", "min":
		unit = Minute
	case "h":
		unit = Hour
	default:
		return 0, fmt.Errorf("simclock: unknown duration unit %q in %q", s[i:], s)
	}
	return Duration(n) * unit, nil
}
