// Package integrity makes the simulated FRAM stack self-healing: it wraps
// committed NVM regions in CRC32 guards whose checksums commit atomically
// with the data (same CommitGroup selector flip), verifies every guard on
// boot and on a periodic scrub schedule, and repairs what it can.
//
// Repair escalates through three policies, cheapest first:
//
//  1. Shadow restore — a committed image fails its CRC but every guard in
//     the same commit group still has a valid shadow (the previous commit).
//     The group selector is flipped back, which is exactly the state a
//     crash-recovery would have produced; the idempotent replay protocol
//     makes re-execution from there safe by construction.
//  2. Monitor reset — a monitor FSM region whose shadow is also gone is
//     reset to its initial state, which is safe by construction: the FSM
//     re-arms on the next startTask event.
//  3. Quarantine — unrecoverable control or application data is resealed
//     (so the guard stops re-flagging it) and handed to the runtime, which
//     fails the current path through the normal action pipeline (skipPath)
//     or aborts with a typed error when the control state itself is gone.
//
// Every verification charges realistic cycle and FRAM-read costs through
// internal/device under its own component, so the scrubber's overhead shows
// up honestly in the energy breakdown.
package integrity

import (
	"encoding/binary"
	"hash/crc32"

	"github.com/tinysystems/artemis-go/internal/device"
	"github.com/tinysystems/artemis-go/internal/nvm"
	"github.com/tinysystems/artemis-go/internal/simclock"
	"github.com/tinysystems/artemis-go/internal/telemetry"
)

// Owner is the NVM accounting owner for all guard metadata, so Table 2 can
// report the layer's persistent footprint separately.
const Owner = "integrity"

// Cost model for a CRC32 pass over n bytes: a software table-driven CRC on
// the MSP430 class of MCU runs at roughly 8 cycles/byte plus a fixed setup.
const (
	checkBaseCycles  = 40
	crcCyclesPerByte = 8
)

// Class selects the recovery policy applied when both the committed image
// and its shadow fail verification.
type Class int

const (
	// ClassControl is runtime control state: quarantined, and if the
	// runtime cannot rebuild it the run fails with a typed error rather
	// than a panic.
	ClassControl Class = iota
	// ClassMonitor is a monitor FSM: reset to its initial state, which is
	// safe by construction (the FSM re-arms on the next startTask).
	ClassMonitor
	// ClassAppData is application data (store, channels): quarantined and
	// escalated so the runtime fails the current path via skipPath.
	ClassAppData
)

// String names the class for reports.
func (c Class) String() string {
	switch c {
	case ClassControl:
		return "control"
	case ClassMonitor:
		return "monitor"
	case ClassAppData:
		return "appdata"
	}
	return "unknown"
}

// Stats counts the layer's activity. All fields are monotonic.
type Stats struct {
	Guards         int // guarded regions registered
	Checks         int // individual image verifications
	Corruptions    int // images that failed their CRC
	ShadowRestores int // group-level reverts to the last good commit
	Resets         int // monitor FSMs reset to initial state
	Quarantines    int // regions resealed and escalated
	Scrubs         int // periodic scrub passes
	BootVerifies   int // boot-time verification passes
}

// Add accumulates o into s (for campaign-level aggregation).
func (s *Stats) Add(o Stats) {
	s.Guards += o.Guards
	s.Checks += o.Checks
	s.Corruptions += o.Corruptions
	s.ShadowRestores += o.ShadowRestores
	s.Resets += o.Resets
	s.Quarantines += o.Quarantines
	s.Scrubs += o.Scrubs
	s.BootVerifies += o.BootVerifies
}

// Guard is one CRC32-protected committed region. The checksum lives in its
// own 8-byte committed region joined to the data's commit group, and is
// refreshed by a pre-commit hook, so guard and data flip together — there
// is no window in which one is committed without the other.
type Guard struct {
	name        string
	class       Class
	data        *nvm.Committed
	crc         *nvm.Committed
	reset       func() // ClassMonitor fallback; must recommit a valid state
	mgr         *Manager
	buf         []byte // scratch, data.Size() bytes
	quarantined bool
}

// Name identifies the guard in reports and escalation decisions.
func (g *Guard) Name() string { return g.name }

// Class reports the guard's recovery policy class.
func (g *Guard) Class() Class { return g.class }

// stageCRC is the pre-commit hook: checksum the staged payload and stage it
// into the CRC region, so the group's selector flip publishes both at once.
func (g *Guard) stageCRC() {
	mcu := g.mgr.mcu
	prev := mcu.SetComponent(device.CompIntegrity)
	defer mcu.SetComponent(prev)
	mcu.Exec(checkBaseCycles + crcCyclesPerByte*int64(len(g.buf)))
	g.data.Read(0, g.buf)
	g.crc.WriteUint64(0, uint64(crc32.ChecksumIEEE(g.buf)))
}

// checkImage verifies one image (committed or shadow) of the guard,
// charging the read and CRC cost. It reports whether the image is intact.
func (g *Guard) checkImage(shadow bool) bool {
	g.mgr.mcu.Exec(checkBaseCycles + crcCyclesPerByte*int64(len(g.buf)))
	var sum [8]byte
	if shadow {
		g.data.ReadShadow(g.buf)
		g.crc.ReadShadow(sum[:])
	} else {
		g.data.ReadCommitted(g.buf)
		g.crc.ReadCommitted(sum[:])
	}
	want := binary.LittleEndian.Uint64(sum[:])
	return uint64(crc32.ChecksumIEEE(g.buf)) == want
}

// cluster groups the guards that share one commit group: their images flip
// together, so repair decisions must be taken together too.
type cluster struct {
	group  *nvm.CommitGroup
	guards []*Guard
}

// Manager owns every guard, runs boot verification and the periodic
// scrubber, and applies the per-class recovery policies.
type Manager struct {
	mem      *nvm.Memory
	mcu      *device.MCU
	interval simclock.Duration
	last     simclock.Time
	guards   []*Guard
	clusters []*cluster // rebuilt lazily after Protect
	pending  []*Guard   // quarantined guards awaiting runtime escalation
	stats    Stats
	tel      *telemetry.Tracer
}

// SetTracer attaches a telemetry tracer; each applied repair then emits a
// ScrubRepair event naming the policy and the guard. Nil disables emission.
func (m *Manager) SetTracer(t *telemetry.Tracer) { m.tel = t }

// NewManager builds a manager scrubbing every scrubInterval of simulated
// time (0 disables the scrubber; boot verification still runs).
func NewManager(mem *nvm.Memory, mcu *device.MCU, scrubInterval simclock.Duration) *Manager {
	return &Manager{mem: mem, mcu: mcu, interval: scrubInterval}
}

// Protect registers a guard over data. The 8-byte CRC region is allocated
// under the integrity owner and joined to data's commit group — if data is
// loose, a fresh group is created (data joins first, so its committed image
// is the one duplicated into the shared selector's view). reset is required
// for ClassMonitor and ignored otherwise.
func (m *Manager) Protect(name string, data *nvm.Committed, class Class, reset func()) *Guard {
	if class == ClassMonitor && reset == nil {
		panic("integrity: ClassMonitor guard needs a reset callback")
	}
	crc := nvm.MustAllocCommitted(m.mem, Owner, name+".crc", 8)
	g := data.Group()
	if g == nil {
		g = nvm.MustNewCommitGroup(m.mem, Owner, name+".grp")
		data.Join(g)
	}
	crc.Join(g)

	guard := &Guard{
		name:  name,
		class: class,
		data:  data,
		crc:   crc,
		reset: reset,
		mgr:   m,
		buf:   make([]byte, data.Size()),
	}
	// Prime both CRC buffers from the current committed payload so the
	// guard verifies before the first real commit.
	data.ReadCommitted(guard.buf)
	var enc [8]byte
	binary.LittleEndian.PutUint64(enc[:], uint64(crc32.ChecksumIEEE(guard.buf)))
	crc.InitImages(enc[:])
	data.SetPreCommit(guard.stageCRC)

	m.guards = append(m.guards, guard)
	m.clusters = nil
	return guard
}

// Guards returns the registered guards in registration order.
func (m *Manager) Guards() []*Guard { return m.guards }

// Stats returns a copy of the activity counters.
func (m *Manager) Stats() Stats {
	s := m.stats
	s.Guards = len(m.guards)
	return s
}

// BootVerify verifies and repairs every guard at boot time and anchors the
// scrub schedule at now.
func (m *Manager) BootVerify(now simclock.Time) {
	m.stats.BootVerifies++
	m.last = now
	m.verifyAll()
}

// Tick runs a scrub pass when the interval has elapsed since the last
// verification. The runtime calls it between steps, never inside one, so a
// scrub can never stretch a task's measured duration.
func (m *Manager) Tick(now simclock.Time) {
	if m.interval <= 0 || now.Sub(m.last) < m.interval {
		return
	}
	m.stats.Scrubs++
	m.last = now
	m.verifyAll()
}

// VerifyNow forces a full verification pass (used by tests and the CLI).
func (m *Manager) VerifyNow() { m.verifyAll() }

// TakeQuarantined pops the oldest quarantined guard awaiting escalation,
// or nil when there is none.
func (m *Manager) TakeQuarantined() *Guard {
	if len(m.pending) == 0 {
		return nil
	}
	g := m.pending[0]
	m.pending = m.pending[1:]
	return g
}

func (m *Manager) clustersNow() []*cluster {
	if m.clusters != nil {
		return m.clusters
	}
	// Registration order keeps the pass deterministic; guards sharing a
	// commit group repair together.
	byGroup := map[*nvm.CommitGroup]*cluster{}
	for _, g := range m.guards {
		grp := g.data.Group()
		c, ok := byGroup[grp]
		if !ok {
			c = &cluster{group: grp}
			byGroup[grp] = c
			m.clusters = append(m.clusters, c)
		}
		c.guards = append(c.guards, g)
	}
	return m.clusters
}

// verifyAll checks every cluster under the integrity component so the cost
// lands in the right row of the energy breakdown.
func (m *Manager) verifyAll() {
	prev := m.mcu.SetComponent(device.CompIntegrity)
	defer m.mcu.SetComponent(prev)
	for _, c := range m.clustersNow() {
		m.verifyCluster(c)
	}
}

func (m *Manager) verifyCluster(c *cluster) {
	var corrupt []*Guard
	for _, g := range c.guards {
		m.stats.Checks++
		if !g.checkImage(false) {
			corrupt = append(corrupt, g)
		}
	}
	if len(corrupt) == 0 {
		return
	}
	m.stats.Corruptions += len(corrupt)

	// Policy 1: if every guard in the cluster still has an intact shadow,
	// flip the shared selector back. That is byte-for-byte the state a
	// power failure before the last commit would have left, so the
	// idempotent replay protocol recovers from it by construction.
	allShadowsGood := true
	for _, g := range c.guards {
		if !g.checkImage(true) {
			allShadowsGood = false
			break
		}
	}
	if allShadowsGood {
		c.group.Revert()
		for _, member := range c.group.Members() {
			member.Reopen()
		}
		m.stats.ShadowRestores++
		for _, g := range corrupt {
			m.tel.ScrubRepair("shadowRestore", g.name, m.mcu.Now())
		}
		return
	}

	// Policies 2 and 3: per-guard fallback.
	for _, g := range corrupt {
		if g.class == ClassMonitor && g.reset != nil {
			g.reset() // recommits, which reseals the CRC via the hook
			m.stats.Resets++
			m.tel.ScrubRepair("reset", g.name, m.mcu.Now())
			continue
		}
		m.quarantine(g)
	}
}

// quarantine reseals the guard over its (corrupt) committed image so it
// stops re-flagging, reloads the stage to match, and queues the guard for
// runtime escalation.
func (m *Manager) quarantine(g *Guard) {
	g.data.Reopen()
	g.data.Read(0, g.buf)
	var enc [8]byte
	binary.LittleEndian.PutUint64(enc[:], uint64(crc32.ChecksumIEEE(g.buf)))
	g.crc.InitImages(enc[:])
	m.stats.Quarantines++
	m.tel.ScrubRepair("quarantine", g.name, m.mcu.Now())
	if !g.quarantined {
		g.quarantined = true
		m.pending = append(m.pending, g)
	}
}
