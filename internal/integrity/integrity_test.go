package integrity

import (
	"testing"

	"github.com/tinysystems/artemis-go/internal/device"
	"github.com/tinysystems/artemis-go/internal/energy"
	"github.com/tinysystems/artemis-go/internal/nvm"
	"github.com/tinysystems/artemis-go/internal/simclock"
)

// crash is the sentinel the crash-hook tests panic with; anything but the
// device's PowerFailure would be re-raised by Device.attempt, but these
// tests recover it directly.
type crash struct{}

func newRig(t *testing.T) (*nvm.Memory, *device.MCU) {
	t.Helper()
	mem := nvm.New(8192)
	mcu, err := device.NewMCU(&simclock.Clock{}, mem, &energy.Continuous{}, device.MSP430FR5994())
	if err != nil {
		t.Fatal(err)
	}
	return mem, mcu
}

// flipBit flips one bit of the named raw allocation (e.g. "x.a").
func flipBit(t *testing.T, mem *nvm.Memory, name string, bit uint) {
	t.Helper()
	for _, a := range mem.Allocations() {
		if a.Name == name {
			mem.FlipBit(a.Off, bit)
			return
		}
	}
	t.Fatalf("allocation %q not found", name)
}

// commitValue stages v at offset 0 and commits (group-wide once guarded).
func commitValue(c *nvm.Committed, v uint64) {
	c.WriteUint64(0, v)
	c.Commit()
}

func TestCleanVerifyFindsNothing(t *testing.T) {
	mem, mcu := newRig(t)
	mgr := NewManager(mem, mcu, 0)
	c := nvm.MustAllocCommitted(mem, "app", "x", 16)
	mgr.Protect("app/x", c, ClassAppData, nil)
	commitValue(c, 0x1111)
	commitValue(c, 0x2222)
	mgr.VerifyNow()
	s := mgr.Stats()
	if s.Guards != 1 || s.Checks == 0 {
		t.Fatalf("stats = %+v, want 1 guard and some checks", s)
	}
	if s.Corruptions != 0 || s.ShadowRestores != 0 || s.Quarantines != 0 {
		t.Fatalf("clean region repaired: %+v", s)
	}
}

// A single flipped bit leaves the other buffer intact, so repair must be a
// shadow restore: the region atomically returns to the previous commit.
func TestShadowRestoreOnSingleBufferFlip(t *testing.T) {
	for _, buffer := range []string{"x.a", "x.b"} {
		mem, mcu := newRig(t)
		mgr := NewManager(mem, mcu, 0)
		c := nvm.MustAllocCommitted(mem, "app", "x", 16)
		mgr.Protect("app/x", c, ClassAppData, nil)
		commitValue(c, 0x1111)
		commitValue(c, 0x2222)

		flipBit(t, mem, buffer, 3)
		mgr.VerifyNow()
		s := mgr.Stats()
		if s.Corruptions == 0 {
			// The flip landed in the shadow buffer: invisible until the
			// other buffer is attacked, covered by the sibling iteration.
			continue
		}
		if s.ShadowRestores != 1 || s.Quarantines != 0 || s.Resets != 0 {
			t.Fatalf("flip in %s: stats = %+v, want exactly one shadow restore", buffer, s)
		}
		if got := c.ReadUint64(0); got != 0x1111 {
			t.Fatalf("flip in %s: value = %#x, want previous commit 0x1111", buffer, got)
		}
		// The restored image must verify clean.
		mgr.VerifyNow()
		if s2 := mgr.Stats(); s2.Corruptions != s.Corruptions {
			t.Fatalf("restored image still corrupt: %+v", s2)
		}
	}
}

// Flipping the same bit in both buffers kills the shadow too; app data is
// then quarantined: resealed (no re-flagging) and queued for escalation.
func TestQuarantineWhenBothBuffersCorrupt(t *testing.T) {
	mem, mcu := newRig(t)
	mgr := NewManager(mem, mcu, 0)
	c := nvm.MustAllocCommitted(mem, "app", "x", 16)
	g := mgr.Protect("app/x", c, ClassAppData, nil)
	commitValue(c, 0x1111)
	commitValue(c, 0x2222)

	flipBit(t, mem, "x.a", 5)
	flipBit(t, mem, "x.b", 5)
	mgr.VerifyNow()
	s := mgr.Stats()
	if s.Quarantines != 1 || s.ShadowRestores != 0 {
		t.Fatalf("stats = %+v, want exactly one quarantine", s)
	}
	if got := mgr.TakeQuarantined(); got != g {
		t.Fatalf("TakeQuarantined = %v, want the app/x guard", got)
	}
	if mgr.TakeQuarantined() != nil {
		t.Fatal("pending queue not drained")
	}

	// Resealed: the next pass must not re-flag or re-queue it.
	mgr.VerifyNow()
	if s2 := mgr.Stats(); s2.Corruptions != s.Corruptions || s2.Quarantines != s.Quarantines {
		t.Fatalf("quarantined guard re-flagged: %+v", s2)
	}
	if mgr.TakeQuarantined() != nil {
		t.Fatal("quarantined guard re-queued")
	}
}

// A monitor FSM with no usable shadow is reset to its initial state via the
// registered callback; the recommit reseals the CRC through the hook.
func TestMonitorResetFallback(t *testing.T) {
	mem, mcu := newRig(t)
	mgr := NewManager(mem, mcu, 0)
	c := nvm.MustAllocCommitted(mem, "monitor", "m", 16)
	const initial = 0xAA
	mgr.Protect("monitor/m", c, ClassMonitor, func() { commitValue(c, initial) })
	commitValue(c, 0x1111)
	commitValue(c, 0x2222)

	flipBit(t, mem, "m.a", 7)
	flipBit(t, mem, "m.b", 7)
	mgr.VerifyNow()
	s := mgr.Stats()
	if s.Resets != 1 || s.Quarantines != 0 {
		t.Fatalf("stats = %+v, want exactly one reset", s)
	}
	if got := c.ReadUint64(0); got != initial {
		t.Fatalf("value = %#x, want initial state %#x", got, uint64(initial))
	}
	mgr.VerifyNow()
	if s2 := mgr.Stats(); s2.Corruptions != s.Corruptions {
		t.Fatalf("reset state still corrupt: %+v", s2)
	}
}

// The acceptance property behind "guard metadata commits atomically with
// its data": crash after every single byte a guarded group commit writes,
// reboot, and require that the image is entirely the old or entirely the
// new value with a matching CRC — never a torn mix, never a false alarm.
func TestGuardCommitAtomicAtEveryCrashByte(t *testing.T) {
	const oldV, newV = 0x0101010101010101, 0x7E7E7E7E7E7E7E7E
	completed := false
	for point := 1; point <= 64 && !completed; point++ {
		mem, mcu := newRig(t)
		mgr := NewManager(mem, mcu, 0)
		c := nvm.MustAllocCommitted(mem, "app", "x", 16)
		mgr.Protect("app/x", c, ClassAppData, nil)
		commitValue(c, oldV)

		c.WriteUint64(0, newV)
		mem.SetCrashHook(point, func() { panic(crash{}) })
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(crash); !ok {
						panic(r)
					}
					return
				}
				completed = true
			}()
			c.Commit()
		}()
		mem.SetCrashHook(0, nil)

		// Reboot: reload stages from committed images, then boot-verify.
		for _, member := range c.Group().Members() {
			member.Reopen()
		}
		mgr.BootVerify(0)
		s := mgr.Stats()
		if s.Corruptions != 0 {
			t.Fatalf("crash at byte %d: boot verify flagged %d corruptions — guard/data tear", point, s.Corruptions)
		}
		if got := c.ReadUint64(0); got != oldV && got != newV {
			t.Fatalf("crash at byte %d: torn value %#x", point, got)
		}
	}
	if !completed {
		t.Fatal("crash sweep never reached a completing commit; raise the bound")
	}
}

func TestScrubTickSchedule(t *testing.T) {
	mem, mcu := newRig(t)
	mgr := NewManager(mem, mcu, 10*simclock.Second)
	c := nvm.MustAllocCommitted(mem, "app", "x", 16)
	mgr.Protect("app/x", c, ClassAppData, nil)
	commitValue(c, 0x1111)

	mgr.BootVerify(0)
	mgr.Tick(simclock.Time(5 * simclock.Second))
	if s := mgr.Stats(); s.Scrubs != 0 {
		t.Fatalf("scrubbed before the interval elapsed: %+v", s)
	}
	mgr.Tick(simclock.Time(10 * simclock.Second))
	mgr.Tick(simclock.Time(12 * simclock.Second))
	mgr.Tick(simclock.Time(20 * simclock.Second))
	if s := mgr.Stats(); s.Scrubs != 2 {
		t.Fatalf("scrubs = %d, want 2 (at t=10s and t=20s)", s.Scrubs)
	}
	if mcu.UsageOf(device.CompIntegrity).Energy <= 0 {
		t.Fatal("scrub passes charged no energy to the integrity component")
	}
}

func TestZeroIntervalDisablesScrubber(t *testing.T) {
	mem, mcu := newRig(t)
	mgr := NewManager(mem, mcu, 0)
	c := nvm.MustAllocCommitted(mem, "app", "x", 16)
	mgr.Protect("app/x", c, ClassAppData, nil)
	mgr.BootVerify(0)
	mgr.Tick(1e9)
	if s := mgr.Stats(); s.Scrubs != 0 {
		t.Fatalf("disabled scrubber ran: %+v", s)
	}
}
