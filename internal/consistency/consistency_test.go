package consistency

import (
	"strings"
	"testing"

	"github.com/tinysystems/artemis-go/internal/device"
	"github.com/tinysystems/artemis-go/internal/health"
	"github.com/tinysystems/artemis-go/internal/mayflyspec"
	"github.com/tinysystems/artemis-go/internal/simclock"
	"github.com/tinysystems/artemis-go/internal/spec"
	"github.com/tinysystems/artemis-go/internal/task"
)

func analyze(t *testing.T, g *task.Graph, src string, budgetUJ float64) []Finding {
	t.Helper()
	s := spec.MustParse(src)
	fs, err := Analyze(s, Options{Graph: g, Profile: device.MSP430FR5994(), BudgetUJ: budgetUJ})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func onlyErrors(fs []Finding) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Severity == Error {
			out = append(out, f)
		}
	}
	return out
}

func TestPaperSpecIsConsistent(t *testing.T) {
	app := health.New()
	fs := analyze(t, app.Graph, health.SpecSource, 800)
	if errs := onlyErrors(fs); len(errs) != 0 {
		t.Fatalf("paper spec flagged: %v", errs)
	}
}

func TestMaxDurationBelowTaskMinimum(t *testing.T) {
	app := health.New()
	// send's BLE transmission alone takes 50 ms; a 10 ms bound is
	// unsatisfiable.
	fs := analyze(t, app.Graph, `send { maxDuration: 10ms onFail: skipTask; }`, 0)
	errs := onlyErrors(fs)
	if len(errs) != 1 || !strings.Contains(errs[0].Msg, "can never be satisfied") {
		t.Fatalf("findings = %v", fs)
	}
	// 200 ms is fine.
	fs = analyze(t, app.Graph, `send { maxDuration: 200ms onFail: skipTask; }`, 0)
	if len(onlyErrors(fs)) != 0 {
		t.Fatalf("satisfiable bound flagged: %v", fs)
	}
}

func TestMITDConsistency(t *testing.T) {
	app := health.New()
	// filter+classify take 50 ms between accel and send; a 10 ms MITD is
	// impossible even on continuous power.
	fs := analyze(t, app.Graph,
		`send { MITD: 10ms dpTask: accel onFail: restartPath Path: 2; }`, 0)
	errs := onlyErrors(fs)
	if len(errs) != 1 || !strings.Contains(errs[0].Msg, "can never be satisfied in path 2") {
		t.Fatalf("findings = %v", fs)
	}
	// Data flowing against path order can never arrive.
	fs = analyze(t, app.Graph,
		`accel { MITD: 5min dpTask: send onFail: restartPath Path: 2; }`, 0)
	errs = onlyErrors(fs)
	if len(errs) != 1 || !strings.Contains(errs[0].Msg, "does not precede") {
		t.Fatalf("findings = %v", fs)
	}
	// The paper's 5-minute MITD is consistent.
	fs = analyze(t, app.Graph,
		`send { MITD: 5min dpTask: accel onFail: restartPath Path: 2; }`, 0)
	if len(onlyErrors(fs)) != 0 {
		t.Fatalf("paper MITD flagged: %v", fs)
	}
}

func TestCollectConsistency(t *testing.T) {
	app := health.New()
	// heartRate runs after calcAvg in path 1 and in no earlier path: the
	// collection can never be satisfied (this is the livelock scenario the
	// runtime tests exercise dynamically; the analyzer catches it
	// statically).
	fs := analyze(t, app.Graph,
		`bodyTemp { collect: 5 dpTask: heartRate onFail: restartPath; }`, 0)
	errs := onlyErrors(fs)
	if len(errs) != 1 || !strings.Contains(errs[0].Msg, "never executes before") {
		t.Fatalf("findings = %v", fs)
	}
	// A producer in an earlier path is fine: send (paths 1,2,3) collecting
	// from bodyTemp (path 1).
	fs = analyze(t, app.Graph,
		`send { collect: 1 dpTask: bodyTemp onFail: restartPath Path: 3; }`, 0)
	if len(onlyErrors(fs)) != 0 {
		t.Fatalf("cross-path collection flagged: %v", fs)
	}
	// Multi-item collection without restartPath draws a warning.
	fs = analyze(t, app.Graph,
		`calcAvg { collect: 10 dpTask: bodyTemp onFail: skipPath; }`, 0)
	warned := false
	for _, f := range fs {
		if f.Severity == Warning && strings.Contains(f.Msg, "restartPath") {
			warned = true
		}
	}
	if !warned {
		t.Fatalf("no restartPath warning: %v", fs)
	}
}

func TestPeriodConsistency(t *testing.T) {
	app := health.New()
	// A full round takes ~340 ms of task work; a 100 ms period with no
	// jitter can never hold between consecutive rounds.
	fs := analyze(t, app.Graph, `bodyTemp { period: 100ms onFail: restartTask; }`, 0)
	errs := onlyErrors(fs)
	if len(errs) != 1 || !strings.Contains(errs[0].Msg, "full round") {
		t.Fatalf("findings = %v", fs)
	}
	fs = analyze(t, app.Graph, `bodyTemp { period: 10s onFail: restartTask; }`, 0)
	if len(onlyErrors(fs)) != 0 {
		t.Fatalf("satisfiable period flagged: %v", fs)
	}
}

func TestEnergyFeasibility(t *testing.T) {
	app := health.New()
	// accel needs ~435 µJ; a 300 µJ budget guarantees it never completes.
	fs := analyze(t, app.Graph, `accel { maxTries: 10 onFail: skipPath; }`, 300)
	errs := onlyErrors(fs)
	if len(errs) != 1 || !strings.Contains(errs[0].Msg, "can never complete") {
		t.Fatalf("findings = %v", fs)
	}
	// With an 800 µJ budget it is feasible.
	fs = analyze(t, app.Graph, `accel { maxTries: 10 onFail: skipPath; }`, 800)
	if len(onlyErrors(fs)) != 0 {
		t.Fatalf("feasible task flagged: %v", fs)
	}
}

func TestMinEnergyConsistency(t *testing.T) {
	app := health.New()
	// Threshold above the whole boot budget: the task would never start.
	fs := analyze(t, app.Graph, `accel { minEnergy: 900uJ onFail: skipTask; }`, 800)
	errs := onlyErrors(fs)
	if len(errs) != 1 || !strings.Contains(errs[0].Msg, "exceeds the boot budget") {
		t.Fatalf("findings = %v", fs)
	}
	// Threshold below the task's own draw: warning (doomed starts pass).
	fs = analyze(t, app.Graph, `accel { minEnergy: 100uJ onFail: skipTask; }`, 800)
	warned := false
	for _, f := range fs {
		if f.Severity == Warning && strings.Contains(f.Msg, "doomed") {
			warned = true
		}
	}
	if !warned {
		t.Fatalf("no doomed-start warning: %v", fs)
	}
	// A threshold covering the draw is clean.
	fs = analyze(t, app.Graph, `accel { minEnergy: 500uJ onFail: skipTask; }`, 800)
	if len(fs) != 0 {
		t.Fatalf("sound minEnergy flagged: %v", fs)
	}
}

func TestRenderAndHasErrors(t *testing.T) {
	app := health.New()
	fs := analyze(t, app.Graph, `send { maxDuration: 10ms onFail: skipTask; }`, 0)
	if !HasErrors(fs) {
		t.Fatal("HasErrors false")
	}
	out := Render(fs)
	if !strings.Contains(out, "error") || !strings.Contains(out, "maxDuration") {
		t.Fatalf("render = %q", out)
	}
	if got := Render(nil); !strings.Contains(got, "no inconsistencies") {
		t.Fatalf("empty render = %q", got)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(&spec.Spec{}, Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	bad := device.MSP430FR5994()
	bad.ClockHz = 0
	if _, err := Analyze(&spec.Spec{}, Options{Graph: health.New().Graph, Profile: bad}); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

func TestBoundHelpers(t *testing.T) {
	prof := device.MSP430FR5994()
	tk := &task.Task{Name: "x", Cycles: 1000, Peripherals: []string{"ble"}}
	if got := TimeOf(tk, prof); got != simclock.Millisecond+prof.Peripherals["ble"].Latency {
		t.Fatalf("TimeOf = %v", got)
	}
	if got := EnergyOf(tk, prof); float64(got) < float64(prof.Peripherals["ble"].Energy) {
		t.Fatalf("EnergyOf = %v too small", got)
	}
}

func TestUnboundedRestartWarning(t *testing.T) {
	app := health.New()
	// The Mayfly-style MITD (restartPath, no maxAttempt) draws the
	// non-termination warning...
	fs := analyze(t, app.Graph,
		`send { MITD: 5min dpTask: accel onFail: restartPath Path: 2; }`, 0)
	warned := false
	for _, f := range fs {
		if f.Severity == Warning && strings.Contains(f.Msg, "forever") {
			warned = true
		}
	}
	if !warned {
		t.Fatalf("no non-termination warning: %v", fs)
	}
	// ...while the paper's Figure-5 property (maxAttempt: 3) is clean.
	fs = analyze(t, app.Graph, health.SpecSource, 800)
	for _, f := range fs {
		if strings.Contains(f.Msg, "forever") {
			t.Fatalf("bounded spec warned: %v", f)
		}
	}
}

func TestMayflyTranslationDrawsWarning(t *testing.T) {
	// The legacy frontend inherits Mayfly's restart-forever semantics; the
	// analyzer flags the translation so users know to add a bound.
	s, err := mayflyspec.Compile(mayflyspec.HealthSource)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Analyze(s, Options{Graph: health.New().Graph, Profile: device.MSP430FR5994()})
	if err != nil {
		t.Fatal(err)
	}
	warned := false
	for _, f := range fs {
		if f.Severity == Warning && strings.Contains(f.Msg, "forever") {
			warned = true
		}
	}
	if !warned {
		t.Fatalf("translated Mayfly spec not flagged: %v", fs)
	}
}
