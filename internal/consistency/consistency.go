// Package consistency statically analyses a property specification against
// the task graph and the device cost model, implementing the paper's §7
// "Property Consistency Checking" direction: "the simultaneous use of
// time-related properties ... may lead to inconsistent specification.
// Inconsistency means that there is no sequence of task executions that
// satisfies all constraints."
//
// The analysis is a lightweight, profile-aware timing/energy bound
// computation in the spirit of the paper's compile-time counterpart ETAP:
// each task's minimum execution time and energy follow from its declared
// cycles and peripheral operations under the device profile (Run-function
// work is not statically visible, so all bounds are lower bounds — the
// analysis only reports properties that are impossible even under the most
// optimistic schedule, plus heuristic warnings).
package consistency

import (
	"fmt"
	"strings"

	"github.com/tinysystems/artemis-go/internal/device"
	"github.com/tinysystems/artemis-go/internal/energy"
	"github.com/tinysystems/artemis-go/internal/simclock"
	"github.com/tinysystems/artemis-go/internal/spec"
	"github.com/tinysystems/artemis-go/internal/task"
)

// Severity classifies a finding.
type Severity int

// Severities.
const (
	// Error marks a property no execution can satisfy.
	Error Severity = iota
	// Warning marks a likely specification problem.
	Warning
)

func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Finding is one analysis result.
type Finding struct {
	Severity Severity
	Task     string
	Kind     spec.Kind
	Pos      spec.Position
	Msg      string
}

func (f Finding) String() string {
	if f.Kind == 0 {
		return fmt.Sprintf("%v: %v: task %q: %s", f.Pos, f.Severity, f.Task, f.Msg)
	}
	return fmt.Sprintf("%v: %v: %v property of %q: %s", f.Pos, f.Severity, f.Kind, f.Task, f.Msg)
}

// Options configures the analysis.
type Options struct {
	Graph   *task.Graph
	Profile device.Profile
	// BudgetUJ, when positive, is the usable energy per boot; it enables
	// the energy-feasibility checks.
	BudgetUJ float64
}

// Analyze checks every property of the specification. The specification
// must already validate against the graph (spec.Validate); Analyze assumes
// well-formed input and focuses on semantic consistency.
func Analyze(s *spec.Spec, opts Options) ([]Finding, error) {
	if opts.Graph == nil {
		return nil, fmt.Errorf("consistency: Options.Graph is required")
	}
	if err := opts.Profile.Validate(); err != nil {
		return nil, err
	}
	a := &analyzer{opts: opts}
	var findings []Finding
	for _, blk := range s.Blocks {
		for _, p := range blk.Props {
			findings = append(findings, a.check(blk.Task, p)...)
		}
		// Energy feasibility is a per-task fact; report it once per block.
		if opts.BudgetUJ > 0 {
			if t := opts.Graph.Task(blk.Task); t != nil {
				if need := a.minTaskEnergy(t) * 1e6; need > opts.BudgetUJ {
					findings = append(findings, Finding{
						Severity: Error, Task: blk.Task, Pos: blk.Pos,
						Msg: fmt.Sprintf("task needs at least %.0f µJ per execution but the boot budget is %g µJ: it can never complete (guaranteed non-termination without a skip guard)",
							need, opts.BudgetUJ),
					})
				}
			}
		}
	}
	return findings, nil
}

type analyzer struct {
	opts Options
}

// minTaskTime is the lower bound on one execution of the task: declared
// cycles plus peripheral latencies (Run-function work adds on top).
func (a *analyzer) minTaskTime(t *task.Task) simclock.Duration {
	d := simclock.CyclesToDuration(t.Cycles, a.opts.Profile.ClockHz)
	for _, p := range t.Peripherals {
		if op, ok := a.opts.Profile.Peripherals[p]; ok {
			d += op.Latency
		}
	}
	return d
}

// minTaskEnergy is the lower bound on one execution's energy draw.
func (a *analyzer) minTaskEnergy(t *task.Task) float64 {
	d := simclock.CyclesToDuration(t.Cycles, a.opts.Profile.ClockHz)
	e := float64(a.opts.Profile.ActivePower.Over(d))
	for _, p := range t.Peripherals {
		if op, ok := a.opts.Profile.Peripherals[p]; ok {
			e += float64(op.Energy) + float64(a.opts.Profile.ActivePower.Over(op.Latency))
		}
	}
	return e
}

// segmentTime is the minimum time from the end of task `from` to the start
// of task `to` along one path: the sum of the minimum execution times of
// the tasks strictly between them.
func (a *analyzer) segmentTime(p *task.Path, from, to string) (simclock.Duration, bool) {
	fromIdx, toIdx := -1, -1
	for i, t := range p.Tasks {
		if t.Name == from && fromIdx < 0 {
			fromIdx = i
		}
		if t.Name == to {
			toIdx = i
		}
	}
	if fromIdx < 0 || toIdx < 0 || fromIdx >= toIdx {
		return 0, false
	}
	var d simclock.Duration
	for i := fromIdx + 1; i < toIdx; i++ {
		d += a.minTaskTime(p.Tasks[i])
	}
	return d, true
}

// pathsToCheck resolves which paths a property applies to.
func (a *analyzer) pathsToCheck(taskName string, p spec.Property) []*task.Path {
	var out []*task.Path
	for _, id := range a.opts.Graph.PathsContaining(taskName) {
		if p.Path == 0 || p.Path == id {
			out = append(out, a.opts.Graph.PathByID(id))
		}
	}
	return out
}

func (a *analyzer) check(taskName string, p spec.Property) []Finding {
	var fs []Finding
	add := func(sev Severity, format string, args ...any) {
		fs = append(fs, Finding{
			Severity: sev, Task: taskName, Kind: p.Kind, Pos: p.Pos,
			Msg: fmt.Sprintf(format, args...),
		})
	}
	t := a.opts.Graph.Task(taskName)
	if t == nil {
		return fs // spec.Validate reports this
	}

	switch p.Kind {
	case spec.KindMaxDuration:
		if min := a.minTaskTime(t); min > p.Duration {
			add(Error, "can never be satisfied: the task's declared work alone takes at least %v > %v",
				min, p.Duration)
		}

	case spec.KindMITD:
		for _, path := range a.pathsToCheck(taskName, p) {
			seg, ok := a.segmentTime(path, p.DpTask, taskName)
			if !ok {
				add(Error, "dpTask %q does not precede %q in path %d: the data can never arrive",
					p.DpTask, taskName, path.ID)
				continue
			}
			if seg > p.Duration {
				add(Error, "can never be satisfied in path %d: the tasks between %q and %q take at least %v > %v",
					path.ID, p.DpTask, taskName, seg, p.Duration)
			}
		}

	case spec.KindCollect:
		producerPaths := a.opts.Graph.PathsContaining(p.DpTask)
		if len(producerPaths) == 0 {
			add(Error, "dpTask %q is in no path: nothing ever produces the data", p.DpTask)
			break
		}
		// The producer must be reachable before the consumer: in the same
		// path ahead of it (each traversal yields one item, restarts
		// accumulate) or in an earlier path.
		feasible := false
		for _, path := range a.pathsToCheck(taskName, p) {
			if _, ok := a.segmentTimeInclusive(path, p.DpTask, taskName); ok {
				feasible = true
			}
		}
		consumerFirst := a.firstPathIndex(taskName, p)
		for _, id := range producerPaths {
			if a.opts.Graph.PathIndex(id) < consumerFirst {
				feasible = true
			}
		}
		if !feasible {
			add(Error, "dpTask %q never executes before %q: the collection can never reach %d",
				p.DpTask, taskName, p.Count)
		} else if p.OnFail != spec.ActionRestartPath {
			for _, path := range a.pathsToCheck(taskName, p) {
				if _, ok := a.segmentTimeInclusive(path, p.DpTask, taskName); ok && p.Count > 1 {
					add(Warning, "needs %d items but one traversal of path %d produces one; without onFail: restartPath the count may never be reached",
						p.Count, path.ID)
				}
			}
		}

	case spec.KindPeriod:
		// A task starts at most once per round; a period shorter than the
		// fastest possible round is unsatisfiable from the second start on.
		var round simclock.Duration
		for _, path := range a.opts.Graph.Paths {
			for _, tt := range path.Tasks {
				round += a.minTaskTime(tt)
			}
		}
		if round > p.Duration+p.Jitter {
			add(Error, "can never be satisfied: a full round takes at least %v > period+jitter %v",
				round, p.Duration+p.Jitter)
		}

	case spec.KindMinEnergy:
		if a.opts.BudgetUJ > 0 && p.EnergyUJ > a.opts.BudgetUJ {
			add(Error, "threshold %g µJ exceeds the boot budget %g µJ: the task would never start",
				p.EnergyUJ, a.opts.BudgetUJ)
		}
		if need := a.minTaskEnergy(t) * 1e6; p.EnergyUJ < need {
			add(Warning, "threshold %g µJ is below the task's own minimum draw %.0f µJ: doomed executions still start",
				p.EnergyUJ, need)
		}
	}

	// The paper's headline lesson as a lint: a time-related property that
	// answers every violation with restartPath and has no maxAttempt bound
	// re-executes forever once ambient conditions make it unsatisfiable —
	// the Mayfly non-termination of Figure 12.
	if (p.Kind == spec.KindMITD || p.Kind == spec.KindPeriod) &&
		p.OnFail == spec.ActionRestartPath && p.MaxAttempt == 0 {
		add(Warning, "restartPath without a maxAttempt bound: a charging delay beyond %v makes this property unsatisfiable and the path re-executes forever (Figure 12's non-termination); add maxAttempt with a skip action", p.Duration)
	}
	return fs
}

// segmentTimeInclusive reports whether from precedes to in the path.
func (a *analyzer) segmentTimeInclusive(p *task.Path, from, to string) (simclock.Duration, bool) {
	return a.segmentTime(p, from, to)
}

// firstPathIndex is the execution-order index of the first path the
// property applies to.
func (a *analyzer) firstPathIndex(taskName string, p spec.Property) int {
	idx := len(a.opts.Graph.Paths)
	for _, path := range a.pathsToCheck(taskName, p) {
		if i := a.opts.Graph.PathIndex(path.ID); i < idx {
			idx = i
		}
	}
	return idx
}

// HasErrors reports whether any finding is an Error.
func HasErrors(fs []Finding) bool {
	for _, f := range fs {
		if f.Severity == Error {
			return true
		}
	}
	return false
}

// Render prints findings one per line; empty input renders a clean bill.
func Render(fs []Finding) string {
	if len(fs) == 0 {
		return "no inconsistencies found\n"
	}
	var b strings.Builder
	for _, f := range fs {
		b.WriteString(f.String())
		b.WriteString("\n")
	}
	return b.String()
}

// EnergyOf exposes the per-task minimum energy bound for tools.
func EnergyOf(t *task.Task, prof device.Profile) energy.Joules {
	a := &analyzer{opts: Options{Profile: prof}}
	return energy.Joules(a.minTaskEnergy(t))
}

// TimeOf exposes the per-task minimum time bound for tools.
func TimeOf(t *task.Task, prof device.Profile) simclock.Duration {
	a := &analyzer{opts: Options{Profile: prof}}
	return a.minTaskTime(t)
}
