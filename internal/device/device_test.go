package device

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/tinysystems/artemis-go/internal/energy"
	"github.com/tinysystems/artemis-go/internal/nvm"
	"github.com/tinysystems/artemis-go/internal/simclock"
)

func newTestMCU(t *testing.T, supply energy.Supply) *MCU {
	t.Helper()
	m, err := NewMCU(&simclock.Clock{}, nvm.New(64*1024), supply, MSP430FR5994())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMCUValidation(t *testing.T) {
	clock, mem := &simclock.Clock{}, nvm.New(1024)
	if _, err := NewMCU(nil, mem, &energy.Continuous{}, MSP430FR5994()); err == nil {
		t.Error("nil clock accepted")
	}
	if _, err := NewMCU(clock, nil, &energy.Continuous{}, MSP430FR5994()); err == nil {
		t.Error("nil memory accepted")
	}
	if _, err := NewMCU(clock, mem, nil, MSP430FR5994()); err == nil {
		t.Error("nil supply accepted")
	}
	bad := MSP430FR5994()
	bad.ClockHz = 0
	if _, err := NewMCU(clock, mem, &energy.Continuous{}, bad); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestProfileValidate(t *testing.T) {
	p := MSP430FR5994()
	if err := p.Validate(); err != nil {
		t.Fatalf("stock profile invalid: %v", err)
	}
	p.ActivePower = -1
	if p.Validate() == nil {
		t.Error("negative active power accepted")
	}
	p = MSP430FR5994()
	p.Peripherals["bad"] = PeripheralOp{Latency: -1}
	if p.Validate() == nil {
		t.Error("negative peripheral latency accepted")
	}
}

func TestExecAdvancesTimeAndEnergy(t *testing.T) {
	m := newTestMCU(t, &energy.Continuous{})
	m.Exec(1_000_000) // 1M cycles at 1 MHz = 1 s
	if got := m.Now(); got != simclock.Time(simclock.Second) {
		t.Fatalf("Now = %v, want 1s", got)
	}
	// 354 µW for 1 s = 354 µJ.
	got := float64(m.Supply.Drained())
	if math.Abs(got-354e-6) > 1e-9 {
		t.Fatalf("Drained = %g, want 354 µJ", got)
	}
}

func TestExecZeroOrNegativeIsNoOp(t *testing.T) {
	m := newTestMCU(t, &energy.Continuous{})
	m.Exec(0)
	m.Exec(-5)
	if m.Now() != 0 || m.Supply.Drained() != 0 {
		t.Fatal("no-op Exec consumed resources")
	}
}

func TestPeripheralCosts(t *testing.T) {
	m := newTestMCU(t, &energy.Continuous{})
	m.Peripheral("ble")
	op := m.Prof.Peripherals["ble"]
	if m.Now() != simclock.Time(op.Latency) {
		t.Fatalf("Now = %v, want %v", m.Now(), op.Latency)
	}
	want := float64(op.Energy) + float64(m.Prof.ActivePower.Over(op.Latency))
	if got := float64(m.Supply.Drained()); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Drained = %g, want %g", got, want)
	}
}

func TestUnknownPeripheralPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown peripheral did not panic")
		}
	}()
	newTestMCU(t, &energy.Continuous{}).Peripheral("warp-drive")
}

func TestFRAMTrafficCharged(t *testing.T) {
	m := newTestMCU(t, &energy.Continuous{})
	r := m.Mem.MustAlloc("app", "buf", 1024)
	r.Write(0, make([]byte, 1000))
	m.Exec(1) // next spend picks up the FRAM delta
	wantFRAM := 1000 * float64(m.Prof.FRAMWritePerByte)
	got := float64(m.Supply.Drained())
	wantCPU := float64(m.Prof.ActivePower.Over(simclock.Microsecond))
	if math.Abs(got-(wantFRAM+wantCPU)) > 1e-12 {
		t.Fatalf("Drained = %g, want %g", got, wantFRAM+wantCPU)
	}
}

func TestComponentAttribution(t *testing.T) {
	m := newTestMCU(t, &energy.Continuous{})
	m.SetComponent(CompApp)
	m.Exec(1000)
	prev := m.SetComponent(CompMonitor)
	if prev != CompApp {
		t.Fatalf("SetComponent returned %q, want app", prev)
	}
	m.Exec(3000)
	m.SetComponent(CompRuntime)
	m.Exec(500)

	if got := m.UsageOf(CompApp).Time; got != simclock.Millisecond {
		t.Errorf("app time %v, want 1ms", got)
	}
	if got := m.UsageOf(CompMonitor).Time; got != 3*simclock.Millisecond {
		t.Errorf("monitor time %v, want 3ms", got)
	}
	if got := m.UsageOf(CompRuntime).Time; got != 500*simclock.Microsecond {
		t.Errorf("runtime time %v, want 0.5ms", got)
	}
	total := m.TotalUsage()
	if total.Time != 4500*simclock.Microsecond {
		t.Errorf("total time %v, want 4.5ms", total.Time)
	}
}

func TestBrownOutRaisesPowerFailure(t *testing.T) {
	supply, err := energy.NewFixedDelaySupply(energy.Microjoules(100), simclock.Minute)
	if err != nil {
		t.Fatal(err)
	}
	m := newTestMCU(t, supply)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("brown-out did not raise PowerFailure")
		}
		if _, ok := r.(PowerFailure); !ok {
			t.Fatalf("raised %v, want PowerFailure", r)
		}
	}()
	m.Exec(10_000_000) // 10 s of active power >> 100 µJ budget
}

func TestDeviceRunCompletesOnContinuousPower(t *testing.T) {
	m := newTestMCU(t, &energy.Continuous{})
	d := &Device{MCU: m}
	calls := 0
	res, err := d.Run(func() error {
		calls++
		m.Exec(1000)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Reboots != 0 || calls != 1 {
		t.Fatalf("res=%+v calls=%d", res, calls)
	}
	if res.Active != simclock.Millisecond || res.Elapsed != simclock.Millisecond {
		t.Fatalf("active=%v elapsed=%v, want 1ms each", res.Active, res.Elapsed)
	}
}

func TestDeviceRunRebootsAndMakesProgress(t *testing.T) {
	// 400 µJ per boot; each boot costs ~354 µJ/s of CPU. A persistent
	// counter lets the app finish after 3 units of work.
	supply, err := energy.NewFixedDelaySupply(energy.Microjoules(400), 2*simclock.Minute)
	if err != nil {
		t.Fatal(err)
	}
	m := newTestMCU(t, supply)
	progress := nvm.MustAllocVar[int64](m.Mem, "app", "progress")
	d := &Device{MCU: m}
	var offs []simclock.Duration
	d.OnReboot = func(n int, off simclock.Duration) { offs = append(offs, off) }
	res, err := d.Run(func() error {
		for progress.Get() < 3 {
			m.Exec(900_000) // ~0.9 s ≈ 319 µJ: one unit per boot
			progress.Set(progress.Get() + 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("did not complete")
	}
	if res.Reboots != 2 {
		t.Fatalf("reboots = %d, want 2", res.Reboots)
	}
	for _, off := range offs {
		if off != 2*simclock.Minute {
			t.Fatalf("charging delay %v, want 2m", off)
		}
	}
	// Elapsed must include the two 2-minute charging delays.
	if res.Elapsed < 4*simclock.Minute {
		t.Fatalf("elapsed %v, want >= 4m of charging", res.Elapsed)
	}
	if res.Active >= simclock.Minute {
		t.Fatalf("active %v implausibly large", res.Active)
	}
}

func TestDeviceRunNonTermination(t *testing.T) {
	supply, err := energy.NewFixedDelaySupply(energy.Microjoules(100), simclock.Minute)
	if err != nil {
		t.Fatal(err)
	}
	m := newTestMCU(t, supply)
	d := &Device{MCU: m, MaxReboots: 50}
	_, err = d.Run(func() error {
		m.Exec(10_000_000) // always browns out: no progress possible
		return nil
	})
	if !errors.Is(err, ErrNonTermination) {
		t.Fatalf("err = %v, want ErrNonTermination", err)
	}
}

func TestDeviceRunPropagatesAppError(t *testing.T) {
	m := newTestMCU(t, &energy.Continuous{})
	d := &Device{MCU: m}
	sentinel := errors.New("app failed")
	res, err := d.Run(func() error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if res.Completed {
		t.Fatal("Completed true despite app error")
	}
}

func TestDeviceRunPropagatesForeignPanics(t *testing.T) {
	m := newTestMCU(t, &energy.Continuous{})
	d := &Device{MCU: m}
	defer func() {
		if recover() == nil {
			t.Fatal("foreign panic swallowed by Run")
		}
	}()
	d.Run(func() error { panic("bug in app") })
}

func TestArmedFailureFiresInsideWork(t *testing.T) {
	m := newTestMCU(t, &energy.Continuous{})
	d := &Device{MCU: m, MaxReboots: 5}
	attempt := 0
	res, err := d.Run(func() error {
		attempt++
		if attempt == 1 {
			m.ArmFailureAfter(5 * simclock.Millisecond)
		}
		m.Exec(10_000) // 10 ms; forced failure at 5 ms on first attempt
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reboots != 1 || attempt != 2 {
		t.Fatalf("reboots=%d attempts=%d, want 1/2", res.Reboots, attempt)
	}
	// 5 ms burned on attempt 1 + 10 ms on attempt 2.
	if res.Active != 15*simclock.Millisecond {
		t.Fatalf("active = %v, want 15ms", res.Active)
	}
}

func TestDisarmFailure(t *testing.T) {
	m := newTestMCU(t, &energy.Continuous{})
	m.ArmFailureAfter(simclock.Millisecond)
	m.DisarmFailure()
	m.Exec(10_000) // would fail if still armed
	if m.Now() != simclock.Time(10*simclock.Millisecond) {
		t.Fatalf("Now = %v", m.Now())
	}
}

// Property: on continuous power, total usage time always equals the clock's
// on-time, for any interleaving of Exec and Peripheral calls.
func TestUsageMatchesClockProperty(t *testing.T) {
	periphs := []string{"adc", "accel", "mic", "ble"}
	f := func(ops []uint8) bool {
		m, err := NewMCU(&simclock.Clock{}, nvm.New(4096), &energy.Continuous{}, MSP430FR5994())
		if err != nil {
			return false
		}
		for _, op := range ops {
			if op%2 == 0 {
				m.Exec(int64(op) * 100)
			} else {
				m.Peripheral(periphs[int(op)%len(periphs)])
			}
		}
		return m.TotalUsage().Time == m.Clock.OnTime()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: energy drained from a fixed-delay supply never exceeds
// budget × (reboots + 1) and the device always either completes or reports
// non-termination — Run never hangs or panics for arbitrary work sizes.
func TestRunAlwaysTerminatesProperty(t *testing.T) {
	f := func(workUnits uint8, budgetUJ uint8) bool {
		budget := energy.Microjoules(float64(budgetUJ%100) + 50) // 50–149 µJ
		supply, err := energy.NewFixedDelaySupply(budget, simclock.Minute)
		if err != nil {
			return false
		}
		m, err := NewMCU(&simclock.Clock{}, nvm.New(4096), supply, MSP430FR5994())
		if err != nil {
			return false
		}
		progress := nvm.MustAllocVar[int64](m.Mem, "app", "p")
		d := &Device{MCU: m, MaxReboots: 300}
		_, err = d.Run(func() error {
			for progress.Get() < int64(workUnits%20) {
				m.Exec(100_000) // 0.1 s ≈ 35 µJ per unit
				progress.Set(progress.Get() + 1)
			}
			return nil
		})
		return err == nil || errors.Is(err, ErrNonTermination)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRadioCosts(t *testing.T) {
	m := newTestMCU(t, &energy.Continuous{})
	m.Radio(3*simclock.Millisecond, energy.Microjoules(45))
	if m.Now() != simclock.Time(3*simclock.Millisecond) {
		t.Fatalf("Now = %v, want 3ms", m.Now())
	}
	want := 45e-6 + float64(m.Prof.ActivePower.Over(3*simclock.Millisecond))
	if got := float64(m.Supply.Drained()); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Drained = %g, want %g", got, want)
	}
}

func TestEnergyLevel(t *testing.T) {
	cont := newTestMCU(t, &energy.Continuous{})
	if !math.IsInf(float64(cont.EnergyLevel()), 1) {
		t.Fatalf("continuous level = %v, want +Inf", cont.EnergyLevel())
	}
	supply, err := energy.NewFixedDelaySupply(energy.Microjoules(500), simclock.Minute)
	if err != nil {
		t.Fatal(err)
	}
	metered := newTestMCU(t, supply)
	if got := float64(metered.EnergyLevel()); math.Abs(got-500e-6) > 1e-12 {
		t.Fatalf("metered level = %g, want 500 µJ", got)
	}
	metered.Exec(100_000) // ~35 µJ
	if got := float64(metered.EnergyLevel()); got >= 500e-6 {
		t.Fatalf("level did not drop: %g", got)
	}
}

func TestEightMHzProfile(t *testing.T) {
	p := MSP430FR5994At8MHz()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	base := MSP430FR5994()
	if p.ClockHz != 8*base.ClockHz {
		t.Fatalf("ClockHz = %g", p.ClockHz)
	}
	// Same work: an eighth of the time, roughly the same energy.
	m8, err := NewMCU(&simclock.Clock{}, nvm.New(1024), &energy.Continuous{}, p)
	if err != nil {
		t.Fatal(err)
	}
	m8.Exec(8_000_000)
	if m8.Now() != simclock.Time(simclock.Second) {
		t.Fatalf("8M cycles at 8 MHz = %v, want 1s", m8.Now())
	}
}
