// Package device models the intermittently powered microcontroller that
// executes the runtime, application tasks, and monitors.
//
// The MCU converts work (CPU cycles, peripheral operations, FRAM traffic)
// into simulated time and energy, draining the configured power supply. When
// the supply browns out, the MCU raises a power failure: all volatile state
// is lost, the device sits dark while the capacitor recharges, and execution
// restarts from the boot entry point. Device.Run drives that reboot loop and
// detects non-termination — the failure mode Figure 12 shows for Mayfly —
// via a reboot budget.
//
// Every drop of time and energy is attributed to the currently executing
// component (application logic, runtime, or monitor), which is how the
// overhead breakdowns of Figures 14 and 15 are measured.
package device

import (
	"errors"
	"fmt"
	"math"

	"github.com/tinysystems/artemis-go/internal/energy"
	"github.com/tinysystems/artemis-go/internal/nvm"
	"github.com/tinysystems/artemis-go/internal/simclock"
	"github.com/tinysystems/artemis-go/internal/telemetry"
)

// Component labels the code that is currently consuming time and energy.
type Component string

// The components the evaluation attributes costs to. The paper's Figures
// 14/15 use the first three; CompIntegrity isolates the self-healing
// layer's scrub/verify overhead so it never pollutes those comparisons.
const (
	CompApp       Component = "app"
	CompRuntime   Component = "runtime"
	CompMonitor   Component = "monitor"
	CompIntegrity Component = "integrity"
	// CompTelemetry isolates the flight recorder's NVM traffic and CPU
	// cycles, making the observability tax a measured line item instead of
	// noise in the paper's comparisons.
	CompTelemetry Component = "telemetry"
)

// Usage is the accumulated cost of one component.
type Usage struct {
	Time   simclock.Duration
	Energy energy.Joules
}

// PowerFailure is the panic sentinel raised when the supply browns out. It
// models the hardware reset: it unwinds the entire volatile call stack up to
// Device.Run, which recovers it and reboots. Code other than Device.Run must
// never recover it.
type PowerFailure struct {
	At simclock.Time
}

func (p PowerFailure) String() string {
	return fmt.Sprintf("power failure at %v", p.At)
}

// ErrNonTermination reports that the boot function did not complete within
// the reboot budget — the device is stuck re-executing without progress.
var ErrNonTermination = errors.New("device: non-termination (reboot budget exhausted)")

// MCU is the execution engine. Application tasks, the runtime, and monitors
// express their work through Exec, Peripheral, and FRAM traffic; the MCU
// turns it into simulated time and energy and fails over to the reboot loop
// when the supply is exhausted.
type MCU struct {
	Clock  *simclock.Clock
	Mem    *nvm.Memory
	Supply energy.Supply
	Prof   Profile

	comp Component
	// use caches breakdown[comp] so account() — called for every Exec,
	// Idle, and peripheral op — mutates through a pointer instead of a
	// map read-modify-write on a string key.
	use       *Usage
	breakdown map[Component]*Usage
	// known caches the accumulators of the predeclared components so the
	// SetComponent switches on the event hot path (runtime → monitor →
	// runtime, twice per event) resolve through a string switch instead of
	// a map lookup. breakdown stays the source of truth for reporting.
	known     [5]*Usage
	lastStats nvm.Stats

	// failAfter, when positive, forces a power failure after that much more
	// execution time, regardless of supply state. Experiments use it to
	// place failures deterministically inside a specific task.
	failAfter simclock.Duration
	failArmed bool
}

// NewMCU wires an MCU from its parts. The profile is validated.
func NewMCU(clock *simclock.Clock, mem *nvm.Memory, supply energy.Supply, prof Profile) (*MCU, error) {
	if clock == nil || mem == nil || supply == nil {
		return nil, errors.New("device: nil clock, memory, or supply")
	}
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	m := &MCU{
		Clock:     clock,
		Mem:       mem,
		Supply:    supply,
		Prof:      prof,
		comp:      CompApp,
		breakdown: make(map[Component]*Usage),
		lastStats: mem.Stats(),
	}
	m.use = m.usage(CompApp)
	return m, nil
}

// usage returns the (created-on-demand) accumulator for a component. The
// five predeclared components resolve through the known cache; anything
// else (custom labels in tests) falls back to the map.
func (m *MCU) usage(c Component) *Usage {
	var slot int
	switch c {
	case CompApp:
		slot = 0
	case CompRuntime:
		slot = 1
	case CompMonitor:
		slot = 2
	case CompIntegrity:
		slot = 3
	case CompTelemetry:
		slot = 4
	default:
		return m.mapUsage(c)
	}
	u := m.known[slot]
	if u == nil {
		u = m.mapUsage(c)
		m.known[slot] = u
	}
	return u
}

func (m *MCU) mapUsage(c Component) *Usage {
	u := m.breakdown[c]
	if u == nil {
		u = &Usage{}
		m.breakdown[c] = u
	}
	return u
}

// SetComponent switches cost attribution and returns the previous component,
// so callers can restore it: defer mcu.SetComponent(mcu.SetComponent(c)).
// Pending FRAM traffic is flushed to the outgoing component first, so each
// component is charged for its own memory accesses.
func (m *MCU) SetComponent(c Component) Component {
	prev := m.comp
	if c != prev {
		m.account(0, 0)
		m.comp = c
		m.use = m.usage(c)
	}
	return prev
}

// Component returns the component currently charged for execution.
func (m *MCU) Component() Component { return m.comp }

// UsageOf returns the accumulated cost of one component.
func (m *MCU) UsageOf(c Component) Usage {
	if u := m.breakdown[c]; u != nil {
		return *u
	}
	return Usage{}
}

// TotalUsage sums cost across all components.
func (m *MCU) TotalUsage() Usage {
	var u Usage
	for _, v := range m.breakdown {
		u.Time += v.Time
		u.Energy += v.Energy
	}
	return u
}

// ArmFailureAfter forces a power failure once d more of execution time has
// elapsed. Experiments use this to land a failure inside a chosen task.
func (m *MCU) ArmFailureAfter(d simclock.Duration) {
	m.failAfter = d
	m.failArmed = true
}

// DisarmFailure cancels a pending forced failure.
func (m *MCU) DisarmFailure() { m.failArmed = false }

// ArmCrashAfterWrites forces a power failure once n more NVM write
// operations have completed, regardless of supply state. Crash explorers
// use it to enumerate failures at write granularity: after write k the
// FRAM holds exactly the first k writes. The schedule is one-shot — it is
// disarmed before the failure is raised, so recovery code runs clean.
func (m *MCU) ArmCrashAfterWrites(n int) {
	m.Mem.SetWriteCrashHook(n, func() {
		panic(PowerFailure{At: m.Clock.Now()})
	})
}

// Idle waits for d in a low-power mode: time passes and idle power drains,
// but no CPU work is performed. Radio backoff and sensor settling use it.
func (m *MCU) Idle(d simclock.Duration) {
	if d <= 0 {
		return
	}
	m.spend(d, m.Prof.IdlePower.Over(d))
}

// framDelta charges the FRAM traffic since the last call to the current
// component and returns its energy.
func (m *MCU) framDelta() energy.Joules {
	s := m.Mem.Stats()
	read := s.BytesRead - m.lastStats.BytesRead
	written := s.BytesWritten - m.lastStats.BytesWritten
	m.lastStats = s
	return energy.Joules(float64(read))*m.Prof.FRAMReadPerByte +
		energy.Joules(float64(written))*m.Prof.FRAMWritePerByte
}

// spend advances time by d and drains e (plus pending FRAM energy), raising
// PowerFailure on brown-out or when a forced failure triggers.
func (m *MCU) spend(d simclock.Duration, e energy.Joules) {
	if m.failArmed && d >= m.failAfter {
		// Consume the time up to the forced failure point, then fail.
		burn := m.failAfter
		m.failArmed = false
		m.account(burn, energy.Joules(float64(e)*float64(burn)/float64(max64(int64(d), 1))))
		panic(PowerFailure{At: m.Clock.Now()})
	}
	if m.failArmed {
		m.failAfter -= d
	}
	m.account(d, e)
}

func (m *MCU) account(d simclock.Duration, e energy.Joules) {
	e += m.framDelta()
	m.Clock.Advance(d)
	m.use.Time += d
	m.use.Energy += e
	if !m.Supply.Drain(m.Clock.Now(), e) {
		panic(PowerFailure{At: m.Clock.Now()})
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Exec runs cycles of CPU work for the current component.
func (m *MCU) Exec(cycles int64) {
	if cycles <= 0 {
		return
	}
	d := simclock.CyclesToDuration(cycles, m.Prof.ClockHz)
	m.spend(d, m.Prof.ActivePower.Over(d))
}

// Peripheral performs one operation on the named peripheral. Unknown
// peripherals panic: they are configuration bugs, not runtime conditions.
func (m *MCU) Peripheral(name string) {
	op, ok := m.Prof.Peripherals[name]
	if !ok {
		panic(fmt.Sprintf("device: unknown peripheral %q in profile %q", name, m.Prof.Name))
	}
	m.spend(op.Latency, op.Energy+m.Prof.ActivePower.Over(op.Latency))
}

// Radio performs one radio exchange of the given latency and energy on top
// of MCU active power; external-monitor deployments use it to charge event
// shipping to the host.
func (m *MCU) Radio(latency simclock.Duration, e energy.Joules) {
	m.spend(latency, e+m.Prof.ActivePower.Over(latency))
}

// Now returns the current simulated time.
func (m *MCU) Now() simclock.Time { return m.Clock.Now() }

// EnergyLevel reads the supply's remaining usable energy, or +Inf when the
// hardware has no way to measure it (§4.2.2's energy-awareness primitive is
// "contingent upon suitable hardware support").
func (m *MCU) EnergyLevel() energy.Joules { return energy.Level(m.Supply) }

// Device wraps an MCU with the reboot loop of an intermittently powered
// node.
type Device struct {
	MCU *MCU

	// MaxReboots bounds the reboot loop; exceeding it is reported as
	// non-termination. Defaults to 10000 when zero.
	MaxReboots int

	// OnReboot, when non-nil, observes each reboot: its ordinal and the
	// charging delay that preceded it.
	OnReboot func(n int, off simclock.Duration)

	// Tracer, when non-nil, records boot, power-failure, and recharge
	// events. Boot events are emitted inside the boot attempt, so a
	// brown-out while telemetry persists its own records is recovered like
	// any other power failure.
	Tracer *telemetry.Tracer
}

// RunResult summarises one application execution.
type RunResult struct {
	Completed bool
	Reboots   int
	// Elapsed is total wall time including charging; Active excludes it.
	Elapsed simclock.Duration
	Active  simclock.Duration
	// Energy is the total energy drained from the supply.
	Energy energy.Joules
}

// Run executes boot under intermittent power: boot is (re)invoked after
// every power failure until it returns, the reboot budget is exhausted
// (ErrNonTermination), or it returns a non-nil application error. Volatile
// state must live inside boot; persistent state in the MCU's nvm.Memory.
func (d *Device) Run(boot func() error) (RunResult, error) {
	maxReboots := d.MaxReboots
	if maxReboots <= 0 {
		maxReboots = 10000
	}
	start := d.MCU.Clock.Now()
	startEnergy := d.MCU.Supply.Drained()
	startActive := d.MCU.TotalUsage().Time
	reboots := 0
	for {
		run := boot
		if d.Tracer != nil {
			n := reboots
			run = func() error {
				d.Tracer.Boot(n, d.MCU.Now())
				return boot()
			}
		}
		err, failed := d.attempt(run)
		if !failed {
			res := d.result(start, startEnergy, startActive, reboots)
			res.Completed = err == nil
			return res, err
		}
		reboots++
		if reboots > maxReboots {
			return d.result(start, startEnergy, startActive, reboots), ErrNonTermination
		}
		failAt := d.MCU.Clock.Now()
		off := d.MCU.Supply.Recharge(failAt)
		d.MCU.Clock.PowerFailure(off)
		if d.Tracer != nil {
			d.Tracer.PowerFailure(failAt)
			level := float64(d.MCU.EnergyLevel()) * 1e6
			if math.IsInf(level, 0) || math.IsNaN(level) {
				level = -1 // unmeasurable supply
			}
			d.Tracer.EnergyCharge(d.MCU.Clock.Now(), off, level)
		}
		if d.OnReboot != nil {
			d.OnReboot(reboots, off)
		}
	}
}

// attempt invokes boot once, converting a PowerFailure panic into
// failed=true. Other panics propagate: they are bugs.
func (d *Device) attempt(boot func() error) (err error, failed bool) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(PowerFailure); !ok {
				panic(r)
			}
			failed = true
		}
	}()
	return boot(), false
}

func (d *Device) result(start simclock.Time, startEnergy energy.Joules, startActive simclock.Duration, reboots int) RunResult {
	return RunResult{
		Reboots: reboots,
		Elapsed: d.MCU.Clock.Now().Sub(start),
		Active:  d.MCU.TotalUsage().Time - startActive,
		Energy:  d.MCU.Supply.Drained() - startEnergy,
	}
}
