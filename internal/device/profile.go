package device

import (
	"fmt"

	"github.com/tinysystems/artemis-go/internal/energy"
	"github.com/tinysystems/artemis-go/internal/simclock"
)

// PeripheralOp is the cost of one use of a peripheral: its latency (during
// which the MCU is active and waiting) and the extra energy drawn by the
// peripheral itself on top of MCU active power.
type PeripheralOp struct {
	Latency simclock.Duration
	Energy  energy.Joules
}

// Profile is the static cost model of a microcontroller platform.
type Profile struct {
	Name    string
	ClockHz float64

	// ActivePower is the MCU core power while executing.
	ActivePower energy.Watts

	// IdlePower is drawn while the MCU waits in a low-power mode (radio
	// backoff, sensor settling). Zero models a free LPM sleep.
	IdlePower energy.Watts

	// FRAM access energy, charged per byte moved, on top of active power.
	FRAMReadPerByte  energy.Joules
	FRAMWritePerByte energy.Joules

	// Peripherals maps a peripheral name to its per-operation cost.
	Peripherals map[string]PeripheralOp
}

// Validate reports configuration errors in the profile.
func (p *Profile) Validate() error {
	if p.ClockHz <= 0 {
		return fmt.Errorf("device: profile %q has non-positive clock %g", p.Name, p.ClockHz)
	}
	if p.ActivePower < 0 || p.IdlePower < 0 || p.FRAMReadPerByte < 0 || p.FRAMWritePerByte < 0 {
		return fmt.Errorf("device: profile %q has negative cost", p.Name)
	}
	for name, op := range p.Peripherals {
		if op.Latency < 0 || op.Energy < 0 {
			return fmt.Errorf("device: peripheral %q has negative cost", name)
		}
	}
	return nil
}

// MSP430FR5994 returns the cost model used throughout the evaluation: a
// 1 MHz MSP430FR5994 (the paper's platform) with the Thunderboard EFR32BG22
// sensor suite of the wearable health application. The constants are
// order-of-magnitude calibrations from the MSP430FR59xx datasheet
// (~118 µA/MHz active at 3 V) and typical sensor/BLE energy figures; the
// evaluation depends on their relative magnitudes (accel and BLE transmission
// are the expensive operations — §5.1), not their absolute values.
func MSP430FR5994() Profile {
	return Profile{
		Name:        "MSP430FR5994@1MHz",
		ClockHz:     1e6,
		ActivePower: 354e-6, // 118 µA/MHz · 3 V at 1 MHz
		IdlePower:   2.1e-6, // ~0.7 µA LPM3 at 3 V
		// FRAM accesses at 1 MHz are cache-less single-cycle; charge a small
		// per-byte premium over core power.
		FRAMReadPerByte:  energy.Joules(0.3e-9),
		FRAMWritePerByte: energy.Joules(1.0e-9),
		Peripherals: map[string]PeripheralOp{
			// Internal ADC temperature read: cheap and fast.
			"adc": {Latency: 1 * simclock.Millisecond, Energy: energy.Microjoules(5)},
			// Accelerometer burst sampling over SPI: the most power-hungry
			// sensing operation in the benchmark (§5.1, path #2).
			"accel": {Latency: 40 * simclock.Millisecond, Energy: energy.Microjoules(420)},
			// Microphone capture for cough detection.
			"mic": {Latency: 20 * simclock.Millisecond, Energy: energy.Microjoules(180)},
			// BLE 5.0 transmission: expensive, like the paper's send task.
			"ble": {Latency: 50 * simclock.Millisecond, Energy: energy.Microjoules(520)},
			// PIR motion detector: near-free wake-up trigger.
			"pir": {Latency: 500 * simclock.Microsecond, Energy: energy.Microjoules(2)},
			// Greyscale camera capture (Camaroptera-class): the most
			// expensive single operation any app in this repository performs.
			"cam": {Latency: 90 * simclock.Millisecond, Energy: energy.Microjoules(950)},
		},
	}
}

// MSP430FR5994At8MHz is the same platform clocked at 8 MHz: CPU work takes
// an eighth of the time while drawing proportionally more power, and FRAM
// accesses incur wait states (modelled as a higher per-byte cost).
// Experiments use it to confirm the evaluation's shape is not an artefact
// of the 1 MHz operating point.
func MSP430FR5994At8MHz() Profile {
	p := MSP430FR5994()
	p.Name = "MSP430FR5994@8MHz"
	p.ClockHz = 8e6
	p.ActivePower = 8 * 354e-6
	p.FRAMReadPerByte *= 2 // wait-state penalty above 1 MHz
	p.FRAMWritePerByte *= 2
	return p
}
