package spec

import "testing"

// FuzzParse asserts the parser never panics and that accepted inputs
// round-trip through the printer. Run with `go test -fuzz=FuzzParse` for a
// real fuzzing session; the seed corpus runs under plain `go test`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		paperSpec,
		"",
		"a { maxTries: 1 onFail: skipPath; }",
		"a { minEnergy: 300uJ onFail: skipTask; }",
		"a { period: 30s jitter: 2s onFail: restartTask maxAttempt: 2 onFail: skipPath; }",
		"a { dpData: x Range: [1.5, 2.5] onFail: completePath; }",
		"a { MITD: 5min dpTask: b onFail: restartPath maxAttempt: 3 onFail: skipPath Path: 2; }",
		"a: { /* block */ maxTries: 1 onFail: skipPath; } // trailing",
		"a { maxTries: 99999999999999999999 onFail: skipPath; }",
		"{{{{",
		"a { maxTries: -1 onFail: skipPath; }",
		"a { collect: 1 dpTask: b onFail: restartPath Path: 0; }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		s, err := Parse(src)
		if err != nil {
			return // rejected input: fine, as long as no panic
		}
		// Accepted input must print and reparse to the same rendering.
		printed := s.String()
		s2, err := Parse(printed)
		if err != nil {
			t.Fatalf("printer output does not reparse: %v\ninput: %q\nprinted: %q", err, src, printed)
		}
		if s2.String() != printed {
			t.Fatalf("round trip unstable:\n%q\nvs\n%q", printed, s2.String())
		}
		// Structural validation must not panic either.
		_ = Validate(s, nil)
	})
}
