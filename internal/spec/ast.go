// Package spec implements the ARTEMIS property specification language
// (§3.2, Table 1, Figure 5): a declarative DSL in which developers state
// properties of their intermittent application — maximum re-execution
// counts, inter-task delays, execution duration bounds, data-collection
// requirements, data-range dependencies, and periodicity — together with
// the corrective action the runtime should take on violation.
//
// A specification is a sequence of task blocks:
//
//	send: {
//	    MITD: 5min dpTask: accel onFail: restartPath maxAttempt: 3 onFail: skipPath Path: 2;
//	    maxDuration: 100ms onFail: skipTask;
//	    collect: 1 dpTask: accel onFail: restartPath Path: 2;
//	}
//
// Parse produces the AST; Validate checks structural rules; the transform
// package lowers each property to a finite-state machine in the
// intermediate language.
package spec

import (
	"fmt"
	"strings"

	"github.com/tinysystems/artemis-go/internal/action"
	"github.com/tinysystems/artemis-go/internal/simclock"
)

// Action is a corrective action a monitor can request from the runtime when
// a property fails (Table 1's onFail constructs). It aliases the shared
// action.Action so that specifications, the intermediate language, and the
// runtime agree on one vocabulary.
type Action = action.Action

// Re-exported actions, ordered by increasing severity.
const (
	ActionNone         = action.None
	ActionRestartTask  = action.RestartTask
	ActionSkipTask     = action.SkipTask
	ActionRestartPath  = action.RestartPath
	ActionSkipPath     = action.SkipPath
	ActionCompletePath = action.CompletePath
)

// ParseAction resolves an onFail action name.
func ParseAction(s string) (Action, error) { return action.Parse(s) }

// Kind identifies a property type (the Property rows of Table 1).
type Kind int

// Property kinds.
const (
	KindMaxTries Kind = iota + 1
	KindMaxDuration
	KindMITD
	KindCollect
	KindDpData
	KindPeriod
	// KindMinEnergy is the §4.2.2 extension: a minimum supply energy level
	// required before the task may start.
	KindMinEnergy
)

var kindNames = map[Kind]string{
	KindMaxTries:    "maxTries",
	KindMaxDuration: "maxDuration",
	KindMITD:        "MITD",
	KindCollect:     "collect",
	KindDpData:      "dpData",
	KindPeriod:      "period",
	KindMinEnergy:   "minEnergy",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Range bounds a dependent data value (the Range variable of Table 1).
type Range struct {
	Lo, Hi float64
}

func (r Range) String() string { return fmt.Sprintf("[%g, %g]", r.Lo, r.Hi) }

// Contains reports whether v lies within the inclusive range.
func (r Range) Contains(v float64) bool { return v >= r.Lo && v <= r.Hi }

// Property is one parsed property of a task block.
type Property struct {
	Kind Kind
	Pos  Position

	// Count is the primary integer value of maxTries and collect.
	Count int64
	// Duration is the primary duration of MITD, maxDuration, and period.
	Duration simclock.Duration
	// DataVar is the monitored variable of dpData.
	DataVar string
	// EnergyUJ is the minimum supply level of minEnergy, in microjoules.
	EnergyUJ float64

	// DpTask names the task this property depends on (MITD, collect).
	DpTask string
	// OnFail is the action taken when the property fails.
	OnFail Action
	// MaxAttempt bounds repeated failures of time-related properties; when
	// exhausted, MaxAttemptAction is taken instead of OnFail (Table 1).
	MaxAttempt       int64
	MaxAttemptAction Action
	// Path explicitly selects the path an action applies to; needed only
	// for tasks shared between paths (path merging, §3.2). Zero when
	// unspecified.
	Path int
	// Range bounds DataVar for dpData properties.
	Range *Range
	// Jitter is the tolerated deviation for period properties (Table 1:
	// periodicity "assumes a jitter").
	Jitter simclock.Duration
}

// TaskBlock groups the properties of one task.
type TaskBlock struct {
	Task  string
	Pos   Position
	Props []Property
}

// Spec is a parsed property specification.
type Spec struct {
	Blocks []TaskBlock
}

// Block returns the block for the named task, or nil.
func (s *Spec) Block(task string) *TaskBlock {
	for i := range s.Blocks {
		if s.Blocks[i].Task == task {
			return &s.Blocks[i]
		}
	}
	return nil
}

// Properties returns every property in the spec paired with its task, in
// source order.
func (s *Spec) Properties() []TaskProperty {
	var out []TaskProperty
	for _, b := range s.Blocks {
		for _, p := range b.Props {
			out = append(out, TaskProperty{Task: b.Task, Property: p})
		}
	}
	return out
}

// TaskProperty pairs a property with the task it belongs to.
type TaskProperty struct {
	Task     string
	Property Property
}

// String renders the specification back in the concrete syntax; Parse of
// the output yields an equivalent spec (round-trip tested).
func (s *Spec) String() string {
	var b strings.Builder
	for i, blk := range s.Blocks {
		if i > 0 {
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "%s: {\n", blk.Task)
		for _, p := range blk.Props {
			b.WriteString("    ")
			b.WriteString(p.String())
			b.WriteString("\n")
		}
		b.WriteString("}\n")
	}
	return b.String()
}

// String renders one property in concrete syntax.
func (p Property) String() string {
	var b strings.Builder
	switch p.Kind {
	case KindMaxTries:
		fmt.Fprintf(&b, "maxTries: %d", p.Count)
	case KindMaxDuration:
		fmt.Fprintf(&b, "maxDuration: %v", p.Duration)
	case KindMITD:
		fmt.Fprintf(&b, "MITD: %v", p.Duration)
	case KindCollect:
		fmt.Fprintf(&b, "collect: %d", p.Count)
	case KindDpData:
		fmt.Fprintf(&b, "dpData: %s", p.DataVar)
	case KindPeriod:
		fmt.Fprintf(&b, "period: %v", p.Duration)
	case KindMinEnergy:
		fmt.Fprintf(&b, "minEnergy: %guJ", p.EnergyUJ)
	}
	if p.DpTask != "" {
		fmt.Fprintf(&b, " dpTask: %s", p.DpTask)
	}
	if p.Range != nil {
		fmt.Fprintf(&b, " Range: %v", *p.Range)
	}
	if p.Jitter != 0 {
		fmt.Fprintf(&b, " jitter: %v", p.Jitter)
	}
	if p.OnFail != ActionNone {
		fmt.Fprintf(&b, " onFail: %v", p.OnFail)
	}
	if p.MaxAttempt != 0 {
		fmt.Fprintf(&b, " maxAttempt: %d", p.MaxAttempt)
		if p.MaxAttemptAction != ActionNone {
			fmt.Fprintf(&b, " onFail: %v", p.MaxAttemptAction)
		}
	}
	if p.Path != 0 {
		fmt.Fprintf(&b, " Path: %d", p.Path)
	}
	b.WriteString(";")
	return b.String()
}
