package spec

import "fmt"

// TokenKind classifies lexical tokens of the property specification
// language.
type TokenKind int

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokInt
	TokFloat
	TokDuration // integer immediately followed by a unit, e.g. 5min, 100ms
	TokColon
	TokSemicolon
	TokComma
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokIdent:
		return "identifier"
	case TokInt:
		return "integer"
	case TokFloat:
		return "number"
	case TokDuration:
		return "duration"
	case TokColon:
		return "':'"
	case TokSemicolon:
		return "';'"
	case TokComma:
		return "','"
	case TokLBrace:
		return "'{'"
	case TokRBrace:
		return "'}'"
	case TokLBracket:
		return "'['"
	case TokRBracket:
		return "']'"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

// Position locates a token in the source text.
type Position struct {
	Line int // 1-based
	Col  int // 1-based, in bytes
}

func (p Position) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical unit.
type Token struct {
	Kind TokenKind
	Text string
	Pos  Position
}

func (t Token) String() string {
	if t.Text == "" {
		return t.Kind.String()
	}
	return fmt.Sprintf("%s %q", t.Kind, t.Text)
}
