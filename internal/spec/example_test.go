package spec_test

import (
	"fmt"

	"github.com/tinysystems/artemis-go/internal/spec"
)

// ExampleParse shows the Figure-5 style property syntax round-tripping
// through the parser and printer.
func ExampleParse() {
	s, err := spec.Parse(`
send: {
    MITD: 5min dpTask: accel onFail: restartPath maxAttempt: 3 onFail: skipPath Path: 2;
    maxDuration: 100ms onFail: skipTask;
}`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, tp := range s.Properties() {
		fmt.Printf("%s has a %v property\n", tp.Task, tp.Property.Kind)
	}
	// Output:
	// send has a MITD property
	// send has a maxDuration property
}

// ExampleValidate shows structural validation catching a property that can
// never be checked.
func ExampleValidate() {
	s := spec.MustParse(`calcAvg { dpData: avgTemp onFail: completePath; }`)
	err := spec.Validate(s, nil)
	fmt.Println(err)
	// Output:
	// 1:11: dpData needs a Range
}
