package spec

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/tinysystems/artemis-go/internal/simclock"
)

// paperSpec is the full specification of Figure 5.
const paperSpec = `
micSense: {
    maxTries: 10 onFail: skipPath;
}

send: {
    MITD: 5min dpTask: accel onFail: restartPath maxAttempt: 3 onFail: skipPath Path: 2;
    maxDuration: 100ms onFail: skipTask;
    collect: 1 dpTask: accel onFail: restartPath Path: 2;
    collect: 1 dpTask: micSense onFail: restartPath Path: 3;
}

calcAvg {
    collect: 10 dpTask: bodyTemp onFail: restartPath;
    dpData: avgTemp Range: [36, 38] onFail: completePath;
}

accel {
    maxTries: 10 onFail: skipPath;
}
`

func TestLexerTokens(t *testing.T) {
	toks, err := Tokens("send: { MITD: 5min; } // c\n/* block */ x")
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]TokenKind, len(toks))
	for i, tok := range toks {
		kinds[i] = tok.Kind
	}
	want := []TokenKind{TokIdent, TokColon, TokLBrace, TokIdent, TokColon,
		TokDuration, TokSemicolon, TokRBrace, TokIdent, TokEOF}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(kinds), toks, len(want))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexerPositions(t *testing.T) {
	toks, err := Tokens("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Position{1, 1}) {
		t.Errorf("a at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos != (Position{2, 3}) {
		t.Errorf("b at %v, want 2:3", toks[1].Pos)
	}
}

func TestLexerNumbers(t *testing.T) {
	toks, err := Tokens("10 36.5 100ms")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokInt || toks[0].Text != "10" {
		t.Errorf("tok0 = %v", toks[0])
	}
	if toks[1].Kind != TokFloat || toks[1].Text != "36.5" {
		t.Errorf("tok1 = %v", toks[1])
	}
	if toks[2].Kind != TokDuration || toks[2].Text != "100ms" {
		t.Errorf("tok2 = %v", toks[2])
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"@", "/* unterminated", "3.5ms"} {
		if _, err := Tokens(src); err == nil {
			t.Errorf("Tokens(%q) succeeded", src)
		}
	}
}

func TestParsePaperSpec(t *testing.T) {
	s, err := Parse(paperSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(s.Blocks))
	}

	send := s.Block("send")
	if send == nil {
		t.Fatal("no send block")
	}
	if len(send.Props) != 4 {
		t.Fatalf("send props = %d, want 4", len(send.Props))
	}
	mitd := send.Props[0]
	if mitd.Kind != KindMITD || mitd.Duration != 5*simclock.Minute ||
		mitd.DpTask != "accel" || mitd.OnFail != ActionRestartPath ||
		mitd.MaxAttempt != 3 || mitd.MaxAttemptAction != ActionSkipPath || mitd.Path != 2 {
		t.Fatalf("MITD parsed wrong: %+v", mitd)
	}
	dur := send.Props[1]
	if dur.Kind != KindMaxDuration || dur.Duration != 100*simclock.Millisecond || dur.OnFail != ActionSkipTask {
		t.Fatalf("maxDuration parsed wrong: %+v", dur)
	}
	col := send.Props[2]
	if col.Kind != KindCollect || col.Count != 1 || col.DpTask != "accel" || col.Path != 2 {
		t.Fatalf("collect parsed wrong: %+v", col)
	}

	avg := s.Block("calcAvg")
	if avg == nil {
		t.Fatal("no calcAvg block")
	}
	dp := avg.Props[1]
	if dp.Kind != KindDpData || dp.DataVar != "avgTemp" || dp.Range == nil ||
		dp.Range.Lo != 36 || dp.Range.Hi != 38 || dp.OnFail != ActionCompletePath {
		t.Fatalf("dpData parsed wrong: %+v", dp)
	}

	mic := s.Block("micSense")
	if mic.Props[0].Kind != KindMaxTries || mic.Props[0].Count != 10 ||
		mic.Props[0].OnFail != ActionSkipPath {
		t.Fatalf("maxTries parsed wrong: %+v", mic.Props[0])
	}

	if got := len(s.Properties()); got != 8 {
		t.Fatalf("Properties() = %d, want 8", got)
	}
	if s.Block("nope") != nil {
		t.Fatal("Block for unknown task non-nil")
	}
}

func TestParsePeriodWithJitter(t *testing.T) {
	s, err := Parse(`sample { period: 30s jitter: 2s onFail: restartTask; }`)
	if err != nil {
		t.Fatal(err)
	}
	p := s.Blocks[0].Props[0]
	if p.Kind != KindPeriod || p.Duration != 30*simclock.Second || p.Jitter != 2*simclock.Second {
		t.Fatalf("period parsed wrong: %+v", p)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"unterminated block", "a { maxTries: 3 onFail: skipPath;"},
		{"missing semicolon", "a { maxTries: 3 onFail: skipPath }"},
		{"unknown property", "a { frobnicate: 3 onFail: skipPath; }"},
		{"unknown clause", "a { maxTries: 3 wibble: 4; }"},
		{"unknown action", "a { maxTries: 3 onFail: explode; }"},
		{"int where duration", "a { MITD: 5 dpTask: b onFail: skipPath; }"},
		{"duration where int", "a { maxTries: 5s onFail: skipPath; }"},
		{"too many onFail", "a { maxTries: 3 onFail: skipPath onFail: skipTask; }"},
		{"duplicate dpTask", "a { collect: 1 dpTask: b dpTask: c onFail: skipPath; }"},
		{"duplicate maxAttempt", "a { MITD: 5min dpTask: b onFail: skipPath maxAttempt: 2 onFail: skipPath maxAttempt: 3; }"},
		{"duplicate Path", "a { collect: 1 dpTask: b onFail: skipPath Path: 1 Path: 2; }"},
		{"duplicate Range", "a { dpData: x Range: [1,2] Range: [3,4] onFail: skipPath; }"},
		{"empty range", "a { dpData: x Range: [5, 2] onFail: skipPath; }"},
		{"range missing comma", "a { dpData: x Range: [5 2] onFail: skipPath; }"},
		{"block without name", "{ maxTries: 3 onFail: skipPath; }"},
		{"garbage", "$$$"},
	}
	for _, tc := range cases {
		if _, err := Parse(tc.src); err == nil {
			t.Errorf("%s: parse succeeded", tc.name)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse on bad input did not panic")
		}
	}()
	MustParse("!!!")
}

func TestRoundTrip(t *testing.T) {
	s1, err := Parse(paperSpec)
	if err != nil {
		t.Fatal(err)
	}
	printed := s1.String()
	s2, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse failed: %v\nprinted:\n%s", err, printed)
	}
	if s1.String() != s2.String() {
		t.Fatalf("round trip diverged:\n%s\nvs\n%s", s1.String(), printed)
	}
}

// Property: any structurally valid generated spec round-trips through
// print→parse→print.
func TestRoundTripProperty(t *testing.T) {
	kinds := []Kind{KindMaxTries, KindMaxDuration, KindMITD, KindCollect, KindDpData, KindPeriod}
	actions := []Action{ActionRestartTask, ActionSkipTask, ActionRestartPath, ActionSkipPath, ActionCompletePath}
	f := func(kindSel, actSel []uint8, counts []uint8) bool {
		n := len(kindSel)
		if n == 0 || n > 6 {
			return true
		}
		s := &Spec{Blocks: []TaskBlock{{Task: "t"}}}
		for i, ks := range kindSel {
			k := kinds[int(ks)%len(kinds)]
			p := Property{Kind: k, OnFail: actions[pick(actSel, i)%len(actions)]}
			c := int64(pick(counts, i)%20) + 1
			switch k {
			case KindMaxTries, KindCollect:
				p.Count = c
			case KindMaxDuration, KindMITD, KindPeriod:
				p.Duration = simclock.Duration(c) * simclock.Second
			case KindDpData:
				p.DataVar = "v"
				p.Range = &Range{Lo: float64(c), Hi: float64(c) + 1}
			}
			if k == KindCollect || k == KindMITD {
				p.DpTask = "dep"
			}
			if k == KindMITD && c%2 == 0 {
				p.MaxAttempt = c
				p.MaxAttemptAction = ActionSkipPath
			}
			s.Blocks[0].Props = append(s.Blocks[0].Props, p)
		}
		out1 := s.String()
		s2, err := Parse(out1)
		if err != nil {
			return false
		}
		return s2.String() == out1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func pick(xs []uint8, i int) int {
	if len(xs) == 0 {
		return 0
	}
	return int(xs[i%len(xs)])
}

// fakeGraph implements GraphInfo for validation tests.
type fakeGraph struct {
	tasks map[string][]int // task -> path IDs
	paths map[int]bool
	data  map[string]bool
}

func (g fakeGraph) HasTask(name string) bool { _, ok := g.tasks[name]; return ok }
func (g fakeGraph) HasPath(id int) bool      { return g.paths[id] }
func (g fakeGraph) TaskPaths(n string) []int { return g.tasks[n] }
func (g fakeGraph) HasData(name string) bool { return g.data[name] }

func healthGraph() fakeGraph {
	return fakeGraph{
		tasks: map[string][]int{
			"bodyTemp": {1}, "calcAvg": {1}, "heartRate": {1},
			"accel": {2}, "filter": {2}, "classify": {2},
			"micSense": {3},
			"send":     {1, 2, 3},
		},
		paths: map[int]bool{1: true, 2: true, 3: true},
		data:  map[string]bool{"avgTemp": true},
	}
}

func TestValidatePaperSpecAgainstGraph(t *testing.T) {
	s := MustParse(paperSpec)
	if err := Validate(s, healthGraph()); err != nil {
		t.Fatalf("paper spec invalid: %v", err)
	}
}

func TestValidateStructuralOnly(t *testing.T) {
	s := MustParse(paperSpec)
	if err := Validate(s, nil); err != nil {
		t.Fatalf("structural validation failed: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"missing onFail", "bodyTemp { maxTries: 3; }"},
		{"zero maxTries", "bodyTemp { maxTries: 0 onFail: skipPath; }"},
		{"MITD without dpTask", "send { MITD: 5min onFail: skipPath Path: 2; }"},
		{"collect without dpTask", "send { collect: 5 onFail: skipPath Path: 2; }"},
		{"dpData without range", "calcAvg { dpData: avgTemp onFail: completePath; }"},
		{"dpData with dpTask", "calcAvg { dpData: avgTemp Range: [1,2] dpTask: accel onFail: completePath; }"},
		{"maxTries with dpTask", "bodyTemp { maxTries: 3 dpTask: accel onFail: skipPath; }"},
		{"maxAttempt on maxTries", "bodyTemp { maxTries: 3 onFail: skipPath maxAttempt: 2 onFail: skipPath; }"},
		{"maxAttempt without action", "send { MITD: 5min dpTask: accel onFail: restartPath maxAttempt: 2 Path: 2; }"},
		{"range on collect", "calcAvg { collect: 1 dpTask: bodyTemp Range: [1,2] onFail: restartPath; }"},
		{"jitter on maxTries", "bodyTemp { maxTries: 3 jitter: 5s onFail: skipPath; }"},
		{"unknown task", "warpCore { maxTries: 3 onFail: skipPath; }"},
		{"unknown dpTask", "calcAvg { collect: 1 dpTask: warpCore onFail: restartPath; }"},
		{"unknown path", "send { collect: 1 dpTask: accel onFail: restartPath Path: 99; }"},
		{"unknown data var", "calcAvg { dpData: warpLevel Range: [1,2] onFail: completePath; }"},
		{"merged task needs Path", "send { collect: 1 dpTask: accel onFail: restartPath; }"},
		{"duplicate block", "accel { maxTries: 3 onFail: skipPath; } accel { maxTries: 4 onFail: skipPath; }"},
		{"empty block", "accel { }"},
	}
	for _, tc := range cases {
		s, err := Parse(tc.src)
		if err != nil {
			t.Errorf("%s: parse failed: %v", tc.name, err)
			continue
		}
		if err := Validate(s, healthGraph()); err == nil {
			t.Errorf("%s: validation passed", tc.name)
		}
	}
}

func TestValidateReportsAllErrors(t *testing.T) {
	s := MustParse("a { maxTries: 0 onFail: skipPath; } b { maxDuration: 1s; }")
	err := Validate(s, nil)
	if err == nil {
		t.Fatal("no error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "maxTries") || !strings.Contains(msg, "onFail") {
		t.Fatalf("error does not mention both problems: %v", msg)
	}
}

func TestRangeContains(t *testing.T) {
	r := Range{Lo: 36, Hi: 38}
	for v, want := range map[float64]bool{35.9: false, 36: true, 37: true, 38: true, 38.1: false} {
		if r.Contains(v) != want {
			t.Errorf("Contains(%g) = %v, want %v", v, !want, want)
		}
	}
}

func TestParseMinEnergy(t *testing.T) {
	s, err := Parse(`accel { minEnergy: 450uJ onFail: skipTask; }`)
	if err != nil {
		t.Fatal(err)
	}
	p := s.Blocks[0].Props[0]
	if p.Kind != KindMinEnergy || p.EnergyUJ != 450 || p.OnFail != ActionSkipTask {
		t.Fatalf("minEnergy parsed wrong: %+v", p)
	}
	for in, uj := range map[string]float64{"2mJ": 2000, "1J": 1e6, "7uj": 7} {
		s, err := Parse("a { minEnergy: " + in + " onFail: skipTask; }")
		if err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		if got := s.Blocks[0].Props[0].EnergyUJ; got != uj {
			t.Errorf("%s = %g µJ, want %g", in, got, uj)
		}
	}
}

func TestParseMinEnergyErrors(t *testing.T) {
	cases := []string{
		`a { minEnergy: 450 onFail: skipTask; }`,    // bare number
		`a { minEnergy: 450kWh onFail: skipTask; }`, // unknown unit
		`a { minEnergy: fast onFail: skipTask; }`,   // not a number
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%q: parse succeeded", src)
		}
	}
}

func TestValidateMinEnergy(t *testing.T) {
	// Structural round trip and rules.
	s := MustParse(`accel { minEnergy: 450uJ onFail: skipTask; }`)
	if err := Validate(s, healthGraph()); err != nil {
		t.Fatalf("valid minEnergy rejected: %v", err)
	}
	bad := MustParse(`accel { minEnergy: 450uJ dpTask: send onFail: skipTask; }`)
	if err := Validate(bad, healthGraph()); err == nil {
		t.Error("minEnergy with dpTask accepted")
	}
	printed := s.String()
	s2, err := Parse(printed)
	if err != nil {
		t.Fatalf("minEnergy did not round-trip: %v\n%s", err, printed)
	}
	if s2.Blocks[0].Props[0].EnergyUJ != 450 {
		t.Fatalf("round trip lost value: %+v", s2.Blocks[0].Props[0])
	}
}
