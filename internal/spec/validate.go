package spec

import (
	"errors"
	"fmt"
)

// GraphInfo is what Validate needs to know about the application's task
// graph to cross-check a specification. The task package's Graph satisfies
// it; tests can use small fakes.
type GraphInfo interface {
	// HasTask reports whether a task with the name exists.
	HasTask(name string) bool
	// HasPath reports whether a path with the ID exists.
	HasPath(id int) bool
	// TaskPaths returns the path IDs containing the named task, in
	// execution order.
	TaskPaths(name string) []int
	// HasData reports whether a monitored data variable exists (a store
	// slot declared by the application).
	HasData(name string) bool
}

// Validate checks structural language rules and, when info is non-nil,
// cross-checks task, path, and data-variable references against the
// application graph. All violations are reported, joined into one error.
func Validate(s *Spec, info GraphInfo) error {
	var errs []error
	fail := func(pos Position, format string, args ...any) {
		errs = append(errs, fmt.Errorf("%v: %s", pos, fmt.Sprintf(format, args...)))
	}
	seenBlock := map[string]bool{}
	for _, blk := range s.Blocks {
		if seenBlock[blk.Task] {
			fail(blk.Pos, "duplicate block for task %q", blk.Task)
		}
		seenBlock[blk.Task] = true
		if info != nil && !info.HasTask(blk.Task) {
			fail(blk.Pos, "unknown task %q", blk.Task)
		}
		if len(blk.Props) == 0 {
			fail(blk.Pos, "task %q has no properties", blk.Task)
		}
		for _, p := range blk.Props {
			validateProperty(blk.Task, p, info, fail)
		}
	}
	return errors.Join(errs...)
}

func validateProperty(taskName string, p Property, info GraphInfo, fail func(Position, string, ...any)) {
	if p.OnFail == ActionNone {
		fail(p.Pos, "%v property of %q needs an onFail action", p.Kind, taskName)
	}
	switch p.Kind {
	case KindMaxTries:
		if p.Count <= 0 {
			fail(p.Pos, "maxTries must be positive, got %d", p.Count)
		}
		if p.DpTask != "" {
			fail(p.Pos, "maxTries does not take dpTask")
		}
	case KindMaxDuration:
		if p.Duration <= 0 {
			fail(p.Pos, "maxDuration must be positive, got %v", p.Duration)
		}
		if p.DpTask != "" {
			fail(p.Pos, "maxDuration does not take dpTask")
		}
	case KindMITD:
		if p.Duration <= 0 {
			fail(p.Pos, "MITD must be positive, got %v", p.Duration)
		}
		if p.DpTask == "" {
			fail(p.Pos, "MITD needs dpTask: the task the data comes from")
		}
	case KindCollect:
		if p.Count <= 0 {
			fail(p.Pos, "collect must be positive, got %d", p.Count)
		}
		if p.DpTask == "" {
			fail(p.Pos, "collect needs dpTask: the task the data comes from")
		}
	case KindDpData:
		if p.DataVar == "" {
			fail(p.Pos, "dpData needs a data variable")
		}
		if p.Range == nil {
			fail(p.Pos, "dpData needs a Range")
		}
		if p.DpTask != "" {
			fail(p.Pos, "dpData does not take dpTask (the dependency is on data, not a task)")
		}
		if info != nil && p.DataVar != "" && !info.HasData(p.DataVar) {
			fail(p.Pos, "unknown data variable %q", p.DataVar)
		}
	case KindPeriod:
		if p.Duration <= 0 {
			fail(p.Pos, "period must be positive, got %v", p.Duration)
		}
	case KindMinEnergy:
		if p.EnergyUJ <= 0 {
			fail(p.Pos, "minEnergy must be positive, got %g", p.EnergyUJ)
		}
		if p.DpTask != "" {
			fail(p.Pos, "minEnergy does not take dpTask")
		}
	default:
		fail(p.Pos, "unknown property kind %v", p.Kind)
	}

	// maxAttempt accompanies time-related properties only (Table 1).
	if p.MaxAttempt != 0 {
		if p.Kind != KindMITD && p.Kind != KindPeriod {
			fail(p.Pos, "maxAttempt applies only to MITD and period, not %v", p.Kind)
		}
		if p.MaxAttempt < 0 {
			fail(p.Pos, "maxAttempt must be positive, got %d", p.MaxAttempt)
		}
		if p.MaxAttemptAction == ActionNone {
			fail(p.Pos, "maxAttempt needs its own onFail action")
		}
	} else if p.MaxAttemptAction != ActionNone {
		fail(p.Pos, "onFail for maxAttempt given without maxAttempt")
	}
	if p.Range != nil && p.Kind != KindDpData {
		fail(p.Pos, "Range applies only to dpData, not %v", p.Kind)
	}
	if p.Jitter != 0 && p.Kind != KindPeriod {
		fail(p.Pos, "jitter applies only to period, not %v", p.Kind)
	}
	if p.Jitter < 0 {
		fail(p.Pos, "jitter must be non-negative, got %v", p.Jitter)
	}

	if info == nil {
		return
	}
	if p.DpTask != "" && !info.HasTask(p.DpTask) {
		fail(p.Pos, "unknown dpTask %q", p.DpTask)
	}
	if p.Path != 0 && !info.HasPath(p.Path) {
		fail(p.Pos, "unknown Path %d", p.Path)
	}
	// Path disambiguation rule (§3.2): a path-level action on a task shared
	// between several paths needs an explicit Path.
	if p.Path == 0 && actsOnPath(p) && info.HasTask(taskName) {
		if ids := info.TaskPaths(taskName); len(ids) > 1 {
			fail(p.Pos, "task %q appears in paths %v; %v with a path action needs an explicit Path", taskName, ids, p.Kind)
		}
	}
}

// actsOnPath reports whether the property requests a static path-level
// action. completePath is exempt: it always applies to the currently
// executing path, so it never needs disambiguation.
func actsOnPath(p Property) bool {
	return isPathAction(p.OnFail) || isPathAction(p.MaxAttemptAction)
}

func isPathAction(a Action) bool {
	switch a {
	case ActionRestartPath, ActionSkipPath:
		return true
	}
	return false
}
