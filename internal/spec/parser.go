package spec

import (
	"fmt"
	"strconv"

	"github.com/tinysystems/artemis-go/internal/simclock"
)

// Parse parses a property specification.
func Parse(src string) (*Spec, error) {
	p := &parser{lex: NewLexer(src)}
	if err := p.next(); err != nil {
		return nil, err
	}
	s := &Spec{}
	for p.tok.Kind != TokEOF {
		blk, err := p.taskBlock()
		if err != nil {
			return nil, err
		}
		s.Blocks = append(s.Blocks, blk)
	}
	return s, nil
}

// MustParse panics on error; for specifications embedded in programs, where
// a parse failure is a build bug.
func MustParse(src string) *Spec {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

type parser struct {
	lex *Lexer
	tok Token
}

func (p *parser) next() error {
	t, err := p.lex.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(k TokenKind) (Token, error) {
	if p.tok.Kind != k {
		return Token{}, fmt.Errorf("%v: expected %v, found %v", p.tok.Pos, k, p.tok)
	}
	t := p.tok
	return t, p.next()
}

func (p *parser) accept(k TokenKind) (bool, error) {
	if p.tok.Kind != k {
		return false, nil
	}
	return true, p.next()
}

// taskBlock := IDENT ':'? '{' property* '}'
// The optional colon matches the paper's mixed usage ("send: {" in Figure 5
// line 5 versus "calcAvg {" in line 12).
func (p *parser) taskBlock() (TaskBlock, error) {
	name, err := p.expect(TokIdent)
	if err != nil {
		return TaskBlock{}, fmt.Errorf("at task block: %w", err)
	}
	if _, err := p.accept(TokColon); err != nil {
		return TaskBlock{}, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return TaskBlock{}, err
	}
	blk := TaskBlock{Task: name.Text, Pos: name.Pos}
	for p.tok.Kind != TokRBrace {
		if p.tok.Kind == TokEOF {
			return TaskBlock{}, fmt.Errorf("%v: unterminated block for task %q", name.Pos, name.Text)
		}
		prop, err := p.property()
		if err != nil {
			return TaskBlock{}, err
		}
		blk.Props = append(blk.Props, prop)
	}
	if err := p.next(); err != nil { // consume '}'
		return TaskBlock{}, err
	}
	return blk, nil
}

// property := kind ':' primaryValue clause* ';'
func (p *parser) property() (Property, error) {
	key, err := p.expect(TokIdent)
	if err != nil {
		return Property{}, fmt.Errorf("at property: %w", err)
	}
	prop := Property{Pos: key.Pos}
	if _, err := p.expect(TokColon); err != nil {
		return Property{}, err
	}
	switch key.Text {
	case "maxTries":
		prop.Kind = KindMaxTries
		prop.Count, err = p.intValue()
	case "collect":
		prop.Kind = KindCollect
		prop.Count, err = p.intValue()
	case "maxDuration":
		prop.Kind = KindMaxDuration
		prop.Duration, err = p.durationValue()
	case "MITD":
		prop.Kind = KindMITD
		prop.Duration, err = p.durationValue()
	case "period":
		prop.Kind = KindPeriod
		prop.Duration, err = p.durationValue()
	case "dpData":
		prop.Kind = KindDpData
		var t Token
		t, err = p.expect(TokIdent)
		prop.DataVar = t.Text
	case "minEnergy":
		prop.Kind = KindMinEnergy
		prop.EnergyUJ, err = p.energyValue()
	default:
		return Property{}, fmt.Errorf("%v: unknown property %q (want maxTries, maxDuration, MITD, collect, dpData, period, or minEnergy)", key.Pos, key.Text)
	}
	if err != nil {
		return Property{}, err
	}
	if err := p.clauses(&prop); err != nil {
		return Property{}, err
	}
	if _, err := p.expect(TokSemicolon); err != nil {
		return Property{}, fmt.Errorf("after %v property: %w", prop.Kind, err)
	}
	return prop, nil
}

// clauses parses the qualifier list of a property. An onFail following a
// maxAttempt binds to the maxAttempt (Figure 5 line 6: "... onFail:
// restartPath maxAttempt: 3 onFail: skipPath ...").
func (p *parser) clauses(prop *Property) error {
	sawMaxAttempt := false
	for p.tok.Kind == TokIdent {
		key := p.tok
		if err := p.next(); err != nil {
			return err
		}
		if _, err := p.expect(TokColon); err != nil {
			return fmt.Errorf("after clause %q: %w", key.Text, err)
		}
		switch key.Text {
		case "dpTask":
			if prop.DpTask != "" {
				return fmt.Errorf("%v: duplicate dpTask", key.Pos)
			}
			t, err := p.expect(TokIdent)
			if err != nil {
				return err
			}
			prop.DpTask = t.Text
		case "onFail":
			t, err := p.expect(TokIdent)
			if err != nil {
				return err
			}
			act, err := ParseAction(t.Text)
			if err != nil {
				return fmt.Errorf("%v: %w", t.Pos, err)
			}
			switch {
			case sawMaxAttempt && prop.MaxAttemptAction == ActionNone:
				prop.MaxAttemptAction = act
			case prop.OnFail == ActionNone:
				prop.OnFail = act
			default:
				return fmt.Errorf("%v: too many onFail clauses", key.Pos)
			}
		case "maxAttempt":
			if sawMaxAttempt {
				return fmt.Errorf("%v: duplicate maxAttempt", key.Pos)
			}
			sawMaxAttempt = true
			n, err := p.intValue()
			if err != nil {
				return err
			}
			prop.MaxAttempt = n
		case "Path":
			if prop.Path != 0 {
				return fmt.Errorf("%v: duplicate Path", key.Pos)
			}
			n, err := p.intValue()
			if err != nil {
				return err
			}
			prop.Path = int(n)
		case "Range":
			if prop.Range != nil {
				return fmt.Errorf("%v: duplicate Range", key.Pos)
			}
			r, err := p.rangeValue()
			if err != nil {
				return err
			}
			prop.Range = &r
		case "jitter":
			if prop.Jitter != 0 {
				return fmt.Errorf("%v: duplicate jitter", key.Pos)
			}
			d, err := p.durationValue()
			if err != nil {
				return err
			}
			prop.Jitter = d
		default:
			return fmt.Errorf("%v: unknown clause %q (want dpTask, onFail, maxAttempt, Path, Range, or jitter)", key.Pos, key.Text)
		}
	}
	return nil
}

func (p *parser) intValue() (int64, error) {
	t, err := p.expect(TokInt)
	if err != nil {
		return 0, err
	}
	n, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%v: bad integer %q: %w", t.Pos, t.Text, err)
	}
	return n, nil
}

func (p *parser) durationValue() (simclock.Duration, error) {
	t := p.tok
	if t.Kind != TokDuration {
		return 0, fmt.Errorf("%v: expected duration like 5min or 100ms, found %v", t.Pos, t)
	}
	if err := p.next(); err != nil {
		return 0, err
	}
	d, err := simclock.ParseDuration(t.Text)
	if err != nil {
		return 0, fmt.Errorf("%v: %w", t.Pos, err)
	}
	return d, nil
}

// energyValue parses an energy literal: an integer immediately followed by
// uJ, mJ, or J (lexed as a duration-shaped token), e.g. "minEnergy: 300uJ".
// The value is normalised to microjoules.
func (p *parser) energyValue() (float64, error) {
	t := p.tok
	if t.Kind != TokDuration {
		return 0, fmt.Errorf("%v: expected energy like 300uJ or 2mJ, found %v", t.Pos, t)
	}
	if err := p.next(); err != nil {
		return 0, err
	}
	i := 0
	for i < len(t.Text) && t.Text[i] >= '0' && t.Text[i] <= '9' {
		i++
	}
	var n float64
	for _, ch := range t.Text[:i] {
		n = n*10 + float64(ch-'0')
	}
	switch t.Text[i:] {
	case "uJ", "uj":
		return n, nil
	case "mJ", "mj":
		return n * 1e3, nil
	case "J", "j":
		return n * 1e6, nil
	}
	return 0, fmt.Errorf("%v: unknown energy unit %q in %q (want uJ, mJ, or J)", t.Pos, t.Text[i:], t.Text)
}

// rangeValue := '[' num ',' num ']'
func (p *parser) rangeValue() (Range, error) {
	if _, err := p.expect(TokLBracket); err != nil {
		return Range{}, err
	}
	lo, err := p.floatValue()
	if err != nil {
		return Range{}, err
	}
	if _, err := p.expect(TokComma); err != nil {
		return Range{}, err
	}
	hi, err := p.floatValue()
	if err != nil {
		return Range{}, err
	}
	if _, err := p.expect(TokRBracket); err != nil {
		return Range{}, err
	}
	if lo > hi {
		return Range{}, fmt.Errorf("empty range [%g, %g]", lo, hi)
	}
	return Range{Lo: lo, Hi: hi}, nil
}

func (p *parser) floatValue() (float64, error) {
	t := p.tok
	if t.Kind != TokInt && t.Kind != TokFloat {
		return 0, fmt.Errorf("%v: expected number, found %v", t.Pos, t)
	}
	if err := p.next(); err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(t.Text, 64)
	if err != nil {
		return 0, fmt.Errorf("%v: bad number %q: %w", t.Pos, t.Text, err)
	}
	return v, nil
}
