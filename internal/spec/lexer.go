package spec

import "fmt"

// Lexer turns property-specification source into tokens. It supports //
// line comments and /* block */ comments.
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *Lexer) advance() byte {
	ch := l.src[l.pos]
	l.pos++
	if ch == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return ch
}

func (l *Lexer) here() Position { return Position{Line: l.line, Col: l.col} }

func isLetter(ch byte) bool {
	return ch >= 'a' && ch <= 'z' || ch >= 'A' && ch <= 'Z' || ch == '_'
}

func isDigit(ch byte) bool { return ch >= '0' && ch <= '9' }

func (l *Lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		switch ch := l.peek(); {
		case ch == ' ' || ch == '\t' || ch == '\r' || ch == '\n':
			l.advance()
		case ch == '/' && l.peek2() == '/':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case ch == '/' && l.peek2() == '*':
			open := l.here()
			l.advance()
			l.advance()
			closed := false
			for l.pos < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return fmt.Errorf("%v: unterminated block comment", open)
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token, or an error on malformed input.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := l.here()
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	ch := l.peek()
	switch {
	case isLetter(ch):
		start := l.pos
		for l.pos < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		return Token{Kind: TokIdent, Text: l.src[start:l.pos], Pos: pos}, nil
	case isDigit(ch):
		return l.number(pos)
	}
	l.advance()
	switch ch {
	case ':':
		return Token{Kind: TokColon, Text: ":", Pos: pos}, nil
	case ';':
		return Token{Kind: TokSemicolon, Text: ";", Pos: pos}, nil
	case ',':
		return Token{Kind: TokComma, Text: ",", Pos: pos}, nil
	case '{':
		return Token{Kind: TokLBrace, Text: "{", Pos: pos}, nil
	case '}':
		return Token{Kind: TokRBrace, Text: "}", Pos: pos}, nil
	case '[':
		return Token{Kind: TokLBracket, Text: "[", Pos: pos}, nil
	case ']':
		return Token{Kind: TokRBracket, Text: "]", Pos: pos}, nil
	}
	return Token{}, fmt.Errorf("%v: unexpected character %q", pos, string(ch))
}

// number lexes an integer, float, or duration (integer + unit suffix, like
// the paper's 5min / 100ms / 3s literals).
func (l *Lexer) number(pos Position) (Token, error) {
	start := l.pos
	for l.pos < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' && isDigit(l.peek2()) {
		l.advance()
		for l.pos < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		if isLetter(l.peek()) {
			return Token{}, fmt.Errorf("%v: fractional durations are not supported", pos)
		}
		return Token{Kind: TokFloat, Text: l.src[start:l.pos], Pos: pos}, nil
	}
	if isLetter(l.peek()) {
		for l.pos < len(l.src) && isLetter(l.peek()) {
			l.advance()
		}
		return Token{Kind: TokDuration, Text: l.src[start:l.pos], Pos: pos}, nil
	}
	return Token{Kind: TokInt, Text: l.src[start:l.pos], Pos: pos}, nil
}

// Tokens lexes the whole input; convenient for tests.
func Tokens(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
