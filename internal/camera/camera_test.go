package camera

import (
	"testing"

	"github.com/tinysystems/artemis-go/internal/artemis"
	"github.com/tinysystems/artemis-go/internal/device"
	"github.com/tinysystems/artemis-go/internal/energy"
	"github.com/tinysystems/artemis-go/internal/monitor"
	"github.com/tinysystems/artemis-go/internal/nvm"
	"github.com/tinysystems/artemis-go/internal/simclock"
	"github.com/tinysystems/artemis-go/internal/task"
)

type rig struct {
	dev   *device.Device
	rt    *artemis.Runtime
	store *task.Store
	app   *App
}

func newRig(t *testing.T, supply energy.Supply, chunksPerFrame, rounds int) *rig {
	t.Helper()
	mem := nvm.New(256 * 1024)
	mcu, err := device.NewMCU(&simclock.Clock{}, mem, supply, device.MSP430FR5994())
	if err != nil {
		t.Fatal(err)
	}
	app, err := New(mem, chunksPerFrame)
	if err != nil {
		t.Fatal(err)
	}
	store, err := task.NewStore(mem, "app", Keys())
	if err != nil {
		t.Fatal(err)
	}
	res, err := app.Compile()
	if err != nil {
		t.Fatal(err)
	}
	mons, err := monitor.NewSet(mem, res)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := artemis.New(artemis.Config{
		MCU: mcu, Graph: app.Graph, Store: store, Monitors: mons,
		Rounds: rounds,
		Extras: []task.Persistent{app.Chunks},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &rig{dev: &device.Device{MCU: mcu, MaxReboots: 400}, rt: rt, store: store, app: app}
}

func TestNewValidation(t *testing.T) {
	mem := nvm.New(64 * 1024)
	if _, err := New(mem, 0); err == nil {
		t.Error("zero chunks accepted")
	}
	if _, err := New(mem, ChunkCap+1); err == nil {
		t.Error("oversized chunks accepted")
	}
}

func TestContinuousPower(t *testing.T) {
	r := newRig(t, &energy.Continuous{}, 2, 3)
	res, err := r.dev.Run(r.rt.Boot)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Reboots != 0 {
		t.Fatalf("res = %+v", res)
	}
	if got := r.store.Get("frames"); got != 3 {
		t.Errorf("frames = %g, want 3", got)
	}
	if got := r.store.Get("chunksMade"); got != 6 {
		t.Errorf("chunksMade = %g, want 6", got)
	}
	// One chunk drains per round.
	if got := r.store.Get("chunksSent"); got != 3 {
		t.Errorf("chunksSent = %g, want 3", got)
	}
	if got := r.app.Chunks.Len(); got != 3 {
		t.Errorf("backlog = %d, want 3", got)
	}
	if r.store.Get("classification") != 1 {
		t.Error("classification missing")
	}
	// Chunks drain oldest-first: after three sends (frame 1's pair and
	// frame 2's first chunk), the head is frame 2's second chunk.
	items := r.app.Chunks.Items()
	if items[0] != 2*100+1 {
		t.Errorf("backlog head = %g, want 201 (frame 2 chunk 1)", items[0])
	}
}

// chunkConservation asserts the invariant a crash must never break:
// made == sent + backlog, with no duplicates and no losses.
func chunkConservation(t *testing.T, r *rig) {
	t.Helper()
	made := r.store.Get("chunksMade")
	sent := r.store.Get("chunksSent")
	backlog := float64(r.app.Chunks.Len())
	if made != sent+backlog {
		t.Fatalf("chunk conservation violated: made %g != sent %g + backlog %g",
			made, sent, backlog)
	}
}

func TestIntermittentConservation(t *testing.T) {
	supply, err := energy.NewFixedDelaySupply(energy.Microjoules(1600), simclock.Minute)
	if err != nil {
		t.Fatal(err)
	}
	r := newRig(t, supply, 2, 3)
	res, err := r.dev.Run(r.rt.Boot)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("did not complete")
	}
	if res.Reboots == 0 {
		t.Fatal("expected power failures under a 1600 µJ budget")
	}
	chunkConservation(t, r)
	if got := r.store.Get("frames"); got < 1 {
		t.Errorf("frames = %g", got)
	}
}

func TestCrashSweepConservation(t *testing.T) {
	// A forced failure at assorted execution offsets must never break chunk
	// conservation — the channel commits atomically with the task boundary.
	ref := newRig(t, &energy.Continuous{}, 2, 2)
	refRes, err := ref.dev.Run(ref.rt.Boot)
	if err != nil {
		t.Fatal(err)
	}
	step := refRes.Active / 23
	for off := simclock.Duration(1); off < refRes.Active; off += step {
		r := newRig(t, &energy.Continuous{}, 2, 2)
		armed := false
		boot := func() error {
			if !armed {
				armed = true
				r.dev.MCU.ArmFailureAfter(off)
			}
			return r.rt.Boot()
		}
		res, err := r.dev.Run(boot)
		if err != nil {
			t.Fatalf("crash at %v: %v", off, err)
		}
		if !res.Completed {
			t.Fatalf("crash at %v: incomplete", off)
		}
		chunkConservation(t, r)
	}
}

func TestMinEnergySkipsCaptureWhenPoor(t *testing.T) {
	// 2350 µJ per boot: round 1 drains ~1630 µJ, so round 2's capture
	// start sees ~700 µJ < 1000 µJ and the minEnergy property skips path 1
	// — the node serves its backlog instead of starting a doomed capture,
	// and the remaining charge still covers the round-2 transmission.
	supply, err := energy.NewFixedDelaySupply(energy.Microjoules(2350), simclock.Minute)
	if err != nil {
		t.Fatal(err)
	}
	r := newRig(t, supply, 2, 2)
	res, err := r.dev.Run(r.rt.Boot)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("did not complete")
	}
	st := r.rt.Stats()
	if st.PathSkips < 1 {
		t.Fatalf("PathSkips = %d, want >= 1 (minEnergy)", st.PathSkips)
	}
	if got := r.store.Get("frames"); got != 1 {
		t.Errorf("frames = %g, want 1 (second capture skipped)", got)
	}
	chunkConservation(t, r)
	// The energy-aware node never browned out: skipping was enough.
	if res.Reboots != 0 {
		t.Errorf("reboots = %d, want 0", res.Reboots)
	}
}

func TestSendChunkSingleRound(t *testing.T) {
	// One round, one chunk per frame: the pipeline produces and delivers a
	// single chunk.
	r := newRig(t, &energy.Continuous{}, 1, 1)
	res, err := r.dev.Run(r.rt.Boot)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("did not complete")
	}
	if got := r.store.Get("chunksSent"); got != 1 {
		t.Errorf("chunksSent = %g, want 1", got)
	}
}
