// Package camera is a second full application beyond the paper's benchmark:
// a Camaroptera-class batteryless remote camera (Desai et al., TECS'22 —
// cited by the paper's introduction as a motivating platform). The node
// wakes on motion, captures a greyscale frame, compresses it into chunks,
// classifies it, and trickles the chunks out over the radio — the classic
// capture-is-cheap/transmit-is-precious intermittent pipeline.
//
//	Path 1: detect → capture → compress            (frame acquisition)
//	Path 2: classify → sendChunk                   (inference + uplink)
//
// It exercises the parts of the framework the health benchmark does not:
// Chain-style channels carry the compressed chunks across paths with
// task-boundary commit, the §4.2.2 minEnergy property refuses to start a
// camera capture the capacitor cannot finish, and chunked transmission
// drains the channel across rounds.
package camera

import (
	"fmt"

	"github.com/tinysystems/artemis-go/internal/nvm"
	"github.com/tinysystems/artemis-go/internal/spec"
	"github.com/tinysystems/artemis-go/internal/task"
	"github.com/tinysystems/artemis-go/internal/transform"
)

// ChunkCap is the channel capacity: the most compressed chunks one frame
// yields.
const ChunkCap = 6

// SpecSource is the application's property specification. The capture task
// carries the §4.2.2 energy precondition: a camera operation draws ~950 µJ,
// so starting one with less than 1000 µJ banked only wastes the charge —
// the property skips acquisition and the round serves the chunk backlog
// instead. No collect property guards sendChunk: the channel is the data
// dependency here, and an empty channel is a legitimate state (a skipped
// capture round), handled in-task rather than by restarting the path.
const SpecSource = `
detect {
    maxTries: 10 onFail: skipPath;
}

capture {
    minEnergy: 1000uJ onFail: skipPath;
    maxTries: 6 onFail: skipPath;
}

sendChunk {
    maxDuration: 300ms onFail: skipTask;
}
`

// Keys returns the store slots the application needs.
func Keys() []string {
	return []string{"motion", "frames", "chunksMade", "chunksSent", "classification"}
}

// App is one camera-node instance: graph plus the chunk channel.
type App struct {
	Graph  *task.Graph
	Chunks *task.Channel
	// SenseMotion, when non-nil, transforms the PIR reading before the
	// detect task stores it (nominal is 1 = motion). Fault-injection
	// harnesses model a stuck or dropped motion sensor here.
	SenseMotion func(nominal float64) float64
}

// New builds the application against the given memory (the channel needs
// NVM). chunksPerFrame controls how much data one capture produces.
func New(mem *nvm.Memory, chunksPerFrame int) (*App, error) {
	if chunksPerFrame <= 0 || chunksPerFrame > ChunkCap {
		return nil, fmt.Errorf("camera: chunksPerFrame must be in 1..%d, got %d", ChunkCap, chunksPerFrame)
	}
	chunks, err := task.NewChannel(mem, "app", "chunks", ChunkCap)
	if err != nil {
		return nil, err
	}
	a := &App{Chunks: chunks}

	detect := &task.Task{
		Name:        "detect",
		Cycles:      1500,
		Peripherals: []string{"pir"},
		Run: func(c *task.Ctx) error {
			motion := 1.0
			if a.SenseMotion != nil {
				motion = a.SenseMotion(motion)
			}
			c.Set("motion", motion)
			return nil
		},
	}
	capture := &task.Task{
		Name:        "capture",
		Cycles:      6000,
		Peripherals: []string{"cam"},
		Run: func(c *task.Ctx) error {
			c.Add("frames", 1)
			return nil
		},
	}
	compress := &task.Task{
		Name:   "compress",
		Cycles: 120_000, // JPEG-ish compression is CPU-heavy
		Run: func(c *task.Ctx) error {
			frame := c.Get("frames")
			for i := 0; i < chunksPerFrame; i++ {
				// Chunk identity encodes frame and index, so tests can
				// verify exactly-once delivery across power failures.
				a.Chunks.PushEvict(frame*100 + float64(i))
			}
			c.Add("chunksMade", float64(chunksPerFrame))
			return nil
		},
	}
	classify := &task.Task{
		Name:   "classify",
		Cycles: 60_000,
		Run: func(c *task.Ctx) error {
			if c.Get("frames") > 0 {
				c.Set("classification", 1) // "animal present"
			}
			return nil
		},
	}
	sendChunk := &task.Task{
		Name:        "sendChunk",
		Cycles:      2000,
		Peripherals: []string{"ble"},
		Run: func(c *task.Ctx) error {
			if _, ok := a.Chunks.Pop(); ok {
				c.Add("chunksSent", 1)
			}
			return nil
		},
	}

	g, err := task.NewGraph(
		&task.Path{ID: 1, Tasks: []*task.Task{detect, capture, compress}},
		&task.Path{ID: 2, Tasks: []*task.Task{classify, sendChunk}},
	)
	if err != nil {
		return nil, err
	}
	a.Graph = g
	return a, nil
}

// Compile lowers the specification against this app's graph.
func (a *App) Compile() (*transform.Result, error) {
	s, err := spec.Parse(SpecSource)
	if err != nil {
		return nil, err
	}
	return transform.Compile(s, transform.Options{Graph: a.Graph, DataVars: Keys()})
}
