// Package examplespecs exposes every runnable example's deployment — graph,
// property specification, and supply — as a reusable configuration. The
// examples under examples/ import these definitions instead of duplicating
// them, and the engine-equivalence harness (engines_test.go at the repo
// root) builds each case twice, once per monitor execution engine, and
// asserts byte-identical behaviour. A new example spec added here is
// automatically held to the compiled-vs-interpreted contract.
package examplespecs

import (
	"fmt"

	"github.com/tinysystems/artemis-go/internal/core"
	"github.com/tinysystems/artemis-go/internal/health"
	"github.com/tinysystems/artemis-go/internal/ir"
	"github.com/tinysystems/artemis-go/internal/mayflyspec"
	"github.com/tinysystems/artemis-go/internal/nvm"
	"github.com/tinysystems/artemis-go/internal/simclock"
	"github.com/tinysystems/artemis-go/internal/spec"
	"github.com/tinysystems/artemis-go/internal/task"
	"github.com/tinysystems/artemis-go/internal/transform"

	"github.com/tinysystems/artemis-go/internal/camera"
)

// Case is one example deployment, buildable repeatedly and
// deterministically: every Config() call yields a fresh configuration whose
// uninterrupted run performs the identical event and write sequence.
type Case struct {
	Name string
	// Config builds a fresh deployment configuration. Callers may toggle
	// engine selection (InterpretMonitors), attach OnDecision observers,
	// etc. before handing it to core.New.
	Config func() (core.Config, error)
}

// All returns every example deployment, in stable order.
func All() []Case {
	return []Case{
		{Name: "health", Config: HealthConfig},
		{Name: "greenhouse", Config: GreenhouseConfig},
		{Name: "camera", Config: CameraConfig},
		{Name: "quickstart", Config: QuickstartConfig},
		{Name: "customir", Config: CustomIRConfig},
		{Name: "legacyspec", Config: LegacySpecConfig},
	}
}

// HealthConfig is the paper's health-monitor benchmark under the
// evaluation's fixed-delay supply.
func HealthConfig() (core.Config, error) {
	app := health.New()
	return core.Config{
		System:     core.Artemis,
		Graph:      app.Graph,
		StoreKeys:  health.Keys(),
		SpecSource: health.SpecSource,
		Supply: core.SupplyConfig{
			Kind: core.SupplyFixedDelay, BudgetUJ: 900, Delay: 30 * simclock.Second,
		},
		MaxReboots: 400,
	}, nil
}

// QuickstartSpec is the two-property specification of examples/quickstart.
const QuickstartSpec = `
sample {
    maxTries: 5 onFail: skipPath;
}
report {
    maxDuration: 200ms onFail: skipTask;
}
`

// QuickstartGraph builds the sample → report application of
// examples/quickstart.
func QuickstartGraph() (*task.Graph, error) {
	sample := &task.Task{
		Name:        "sample",
		Cycles:      5_000,
		Peripherals: []string{"adc"},
		Run: func(c *task.Ctx) error {
			c.Set("reading", 21.5)
			c.Add("samples", 1)
			return nil
		},
	}
	report := &task.Task{
		Name:        "report",
		Cycles:      2_000,
		Peripherals: []string{"ble"},
		Run: func(c *task.Ctx) error {
			c.Add("reports", 1)
			return nil
		},
	}
	return task.NewGraph(&task.Path{ID: 1, Tasks: []*task.Task{sample, report}})
}

// QuickstartKeys lists quickstart's store outputs.
func QuickstartKeys() []string { return []string{"reading", "samples", "reports"} }

// QuickstartConfig is the smallest complete ARTEMIS deployment
// (examples/quickstart).
func QuickstartConfig() (core.Config, error) {
	graph, err := QuickstartGraph()
	if err != nil {
		return core.Config{}, err
	}
	return core.Config{
		System:     core.Artemis,
		Graph:      graph,
		StoreKeys:  QuickstartKeys(),
		SpecSource: QuickstartSpec,
		Supply: core.SupplyConfig{
			Kind: core.SupplyFixedDelay, BudgetUJ: 700, Delay: 30 * simclock.Second,
		},
		Rounds: 3,
	}, nil
}

// GreenhouseSpec is the property specification of examples/greenhouse.
const GreenhouseSpec = `
soilSense {
    period: 2min jitter: 30s onFail: restartPath maxAttempt: 4 onFail: skipPath;
    maxTries: 8 onFail: skipPath;
}

calcMoisture {
    collect: 5 dpTask: soilSense onFail: restartPath;
    dpData: moisture Range: [30, 100] onFail: completePath;
}

valve {
    maxDuration: 500ms onFail: skipTask;
}
`

// GreenhouseGraph builds the soilSense → calcMoisture → valve application
// of examples/greenhouse. The soil starts moist and dries a little with
// every sample, so a long enough run always ends in the dpData emergency
// opening the valve.
func GreenhouseGraph() (*task.Graph, error) {
	soilSense := &task.Task{
		Name:        "soilSense",
		Cycles:      3_000,
		Peripherals: []string{"adc"},
		Run: func(c *task.Ctx) error {
			reading := 60 - 3*c.Get("sampleCount")
			if reading < 5 {
				reading = 5 // fully dry soil still reads a little
			}
			c.Set("lastReading", reading)
			c.Add("readingSum", reading)
			c.Add("sampleCount", 1)
			return nil
		},
	}
	calcMoisture := &task.Task{
		Name:    "calcMoisture",
		Cycles:  4_000,
		DepData: "moisture",
		Run: func(c *task.Ctx) error {
			if n := c.Get("sampleCount"); n > 0 {
				c.Set("moisture", c.Get("readingSum")/n)
			}
			return nil
		},
	}
	valve := &task.Task{
		Name:        "valve",
		Cycles:      10_000,
		Peripherals: []string{"ble"}, // actuator command over radio
		Run: func(c *task.Ctx) error {
			if c.Get("moisture") < 30 {
				c.Add("irrigations", 1)
			}
			return nil
		},
	}
	return task.NewGraph(
		&task.Path{ID: 1, Tasks: []*task.Task{soilSense, calcMoisture, valve}},
	)
}

// GreenhouseKeys lists the greenhouse node's store outputs.
func GreenhouseKeys() []string {
	return []string{"lastReading", "readingSum", "sampleCount", "moisture", "irrigations"}
}

// GreenhouseConfig is the solar-harvesting greenhouse node of
// examples/greenhouse.
func GreenhouseConfig() (core.Config, error) {
	graph, err := GreenhouseGraph()
	if err != nil {
		return core.Config{}, err
	}
	return core.Config{
		System:     core.Artemis,
		Graph:      graph,
		StoreKeys:  GreenhouseKeys(),
		SpecSource: GreenhouseSpec,
		Supply: core.SupplyConfig{
			Kind:         core.SupplyHarvested,
			CapacitanceF: 470e-6, VMax: 5.0, VOn: 3.0, VOff: 1.8,
			HarvestW: 8e-6, // 8 µW of harvested solar power
		},
		Rounds:     12, // a day of sampling rounds
		MaxReboots: 5000,
	}, nil
}

// CameraConfig is the §4.2.2 camera node: chunked frame transfer with the
// minEnergy guard, built against the framework's NVM because its chunk
// queue closes over persistent structures.
func CameraConfig() (core.Config, error) {
	return core.Config{
		System:     core.Artemis,
		StoreKeys:  camera.Keys(),
		SpecSource: camera.SpecSource,
		Supply: core.SupplyConfig{
			Kind: core.SupplyFixedDelay, BudgetUJ: 1500, Delay: simclock.Minute,
		},
		Rounds:     2,
		MaxReboots: 400,
		BuildApp: func(mem *nvm.Memory) (*task.Graph, []task.Persistent, error) {
			app, err := camera.New(mem, 2)
			if err != nil {
				return nil, nil, err
			}
			return app.Graph, []task.Persistent{app.Chunks}, nil
		},
	}, nil
}

// CustomIRSource is the hand-written §3.3 escape-hatch machine of
// examples/customir: a duty-cycle alternation no Figure-5 construct covers.
const CustomIRSource = `
// Alternation: after a send completes, another send must not start until a
// sample has completed. Three violations in a row complete the path.
machine SendAlternation {
    var sent: bool = false
    var burst: int = 0
    initial state Watch {
        on end [task == "sample"] -> Watch { sent = false; burst = 0; }
        on end [task == "send" && !sent] -> Watch { sent = true; }
        on start [task == "send" && sent && burst < 2] -> Watch { burst = burst + 1; fail restartTask; }
        on start [task == "send" && sent && burst >= 2] -> Watch { burst = 0; sent = false; fail completePath; }
    }
}
`

// CustomIRResult parses and checks the hand-written machine and wraps it as
// a monitor program, the way artemisgen wraps spec-derived machines.
func CustomIRResult() (*transform.Result, error) {
	prog, err := ir.Parse(CustomIRSource)
	if err != nil {
		return nil, err
	}
	return &transform.Result{
		Program: prog,
		Bindings: []transform.Binding{{
			Machine: "SendAlternation", Task: "send", AllPaths: []int{1, 2},
		}},
	}, nil
}

// CustomIRConfig attaches the hand-written alternation machine to a
// two-path deployment whose merged "send" task violates the alternation
// deterministically — path 2 transmits without sampling — so both the
// restartTask and completePath arms execute.
func CustomIRConfig() (core.Config, error) {
	res, err := CustomIRResult()
	if err != nil {
		return core.Config{}, err
	}
	sample := &task.Task{
		Name:        "sample",
		Cycles:      4_000,
		Peripherals: []string{"adc"},
		Run: func(c *task.Ctx) error {
			c.Set("reading", 12.25)
			c.Add("samples", 1)
			return nil
		},
	}
	send := &task.Task{
		Name:        "send",
		Cycles:      6_000,
		Peripherals: []string{"ble"},
		Run: func(c *task.Ctx) error {
			c.Add("sends", 1)
			return nil
		},
	}
	graph, err := task.NewGraph(
		&task.Path{ID: 1, Tasks: []*task.Task{sample, send}},
		&task.Path{ID: 2, Tasks: []*task.Task{send}},
	)
	if err != nil {
		return core.Config{}, err
	}
	return core.Config{
		System:    core.Artemis,
		Graph:     graph,
		StoreKeys: []string{"reading", "samples", "sends"},
		Compiled:  res,
		Supply: core.SupplyConfig{
			Kind: core.SupplyFixedDelay, BudgetUJ: 800, Delay: 20 * simclock.Second,
		},
		Rounds:     4,
		MaxReboots: 400,
	}, nil
}

// LegacySpecConfig is examples/legacyspec's completing variant: the Mayfly
// health constraints translated by the mayflyspec frontend, augmented with
// the one native maxAttempt bound that breaks the restart-forever livelock.
func LegacySpecConfig() (core.Config, error) {
	augmented, err := mayflyspec.Compile(mayflyspec.HealthSource)
	if err != nil {
		return core.Config{}, err
	}
	found := false
	for i := range augmented.Blocks {
		if augmented.Blocks[i].Task != "send" {
			continue
		}
		for j := range augmented.Blocks[i].Props {
			p := &augmented.Blocks[i].Props[j]
			if p.Kind == spec.KindMITD {
				p.MaxAttempt = 3
				p.MaxAttemptAction = spec.ActionSkipPath
				found = true
			}
		}
	}
	if !found {
		return core.Config{}, fmt.Errorf("examplespecs: no MITD property on send in the translated legacy spec")
	}
	app := health.New()
	return core.Config{
		System:     core.Artemis,
		Graph:      app.Graph,
		StoreKeys:  health.Keys(),
		SpecSource: augmented.String(),
		Supply: core.SupplyConfig{
			Kind: core.SupplyFixedDelay, BudgetUJ: 800, Delay: 6 * simclock.Minute,
		},
		MaxReboots: 80,
	}, nil
}
