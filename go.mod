module github.com/tinysystems/artemis-go

go 1.22
